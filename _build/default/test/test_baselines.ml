(* Solstice, TMS and Edmonds: every schedule must be a sequence of
   valid matchings that covers the demand, drains it under the
   executor, and respects the circuit-switched physics. *)

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Units = Sunflow_core.Units
module Schedule = Sunflow_core.Schedule
module Assignment = Sunflow_baselines.Assignment
module Solstice = Sunflow_baselines.Solstice
module Tms = Sunflow_baselines.Tms
module Edmonds = Sunflow_baselines.Edmonds

let b = Units.gbps 1.
let delta = Units.ms 10.

let schedulers =
  [
    ("solstice", fun ~delta ~bandwidth c -> Solstice.schedule ~delta ~bandwidth c);
    ("tms", fun ~delta ~bandwidth c -> Tms.schedule ~delta ~bandwidth c);
    ("edmonds", fun ~delta ~bandwidth c -> Edmonds.schedule ~delta ~bandwidth c);
  ]

let assignments_of =
  [
    ("solstice", fun ~bandwidth d -> Solstice.assignments ~bandwidth d);
    ("tms", fun ~bandwidth d -> Tms.assignments ~bandwidth d);
    ("edmonds", fun ~bandwidth d -> Edmonds.assignments ~bandwidth d);
  ]

(* coverage: scheduled circuit time per pair must be at least the
   demand's processing time (stuffing may only add) *)
let covers ~bandwidth demand plan =
  let scheduled : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Assignment.t) ->
      List.iter
        (fun pair ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt scheduled pair) in
          Hashtbl.replace scheduled pair (prev +. a.duration))
        a.pairs)
    plan;
  List.for_all
    (fun ((i, j), bytes) ->
      let got = Option.value ~default:0. (Hashtbl.find_opt scheduled (i, j)) in
      got >= (bytes /. bandwidth) -. 1e-9)
    (Demand.entries demand)

let prop_plan_is_sound name assignments =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:(name ^ ": assignments are matchings covering the demand")
       ~count:100
       (Util.Gen.nonempty_demand ~n_ports:6 ~max_flows:10 ())
       (fun d ->
         let plan = assignments ~bandwidth:b d in
         List.for_all
           (fun (a : Assignment.t) ->
             Assignment.is_matching a.pairs && a.duration > 0.)
           plan
         && covers ~bandwidth:b d plan))

let prop_executor_drains name schedule =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:(name ^ ": executor drains all real demand")
       ~count:100
       (Util.Gen.coflow ~n_ports:6 ~max_flows:10 ())
       (fun c ->
         let (o : Sunflow_baselines.Executor.outcome) =
           schedule ~delta ~bandwidth:b c
         in
         Util.close ~eps:1e-6 0. o.leftover
         &&
         match Schedule.check_port_constraints o.reservations with
         | Ok _ -> true
         | Error _ -> false))

let prop_cct_at_least_tpl name schedule =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:(name ^ ": CCT is at least the packet lower bound") ~count:100
       (Util.Gen.coflow ~n_ports:6 ~max_flows:10 ())
       (fun c ->
         let (o : Sunflow_baselines.Executor.outcome) =
           schedule ~delta ~bandwidth:b c
         in
         o.cct >= Bounds.packet_lower ~bandwidth:b c.demand -. 1e-9))

let test_empty () =
  List.iter
    (fun (name, assignments) ->
      Alcotest.(check int)
        (name ^ " empty") 0
        (List.length (assignments ~bandwidth:b (Demand.create ()))))
    assignments_of

let test_single_flow_each () =
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), Units.mb 10.) ]) in
  List.iter
    (fun (name, schedule) ->
      let (o : Sunflow_baselines.Executor.outcome) = schedule ~delta ~bandwidth:b c in
      Util.check_close (name ^ " single flow optimal") 0.09 o.cct)
    schedulers

let test_edmonds_slot_respected () =
  let d = Demand.of_list [ ((0, 1), Units.mb 100.) ] in
  let plan = Edmonds.assignments ~slot:0.3 ~bandwidth:b d in
  Alcotest.(check bool) "durations within slot" true
    (List.for_all (fun (a : Assignment.t) -> a.duration <= 0.3 +. 1e-9) plan);
  (* 0.8 s of demand in 0.3 s slots: 3 assignments *)
  Alcotest.(check int) "slot count" 3 (List.length plan)

let test_edmonds_prefers_heavy () =
  (* the first matching must take the heavy pair over the two light
     ones when they conflict *)
  let d =
    Demand.of_list
      [ ((0, 1), Units.mb 100.); ((0, 2), Units.mb 1.); ((1, 1), Units.mb 1.) ]
  in
  match Edmonds.assignments ~slot:10. ~bandwidth:b d with
  | first :: _ ->
    Alcotest.(check bool) "heavy pair matched" true
      (Assignment.mem first (0, 1))
  | [] -> Alcotest.fail "no assignments"

let test_solstice_quantisation_bounded () =
  (* quantisation may round demand up but never by more than one
     quantum per entry *)
  let d = Demand.of_list [ ((0, 1), Units.mb 17.3); ((1, 0), Units.mb 3.1) ] in
  let plan = Solstice.assignments ~bandwidth:b d in
  let total =
    List.fold_left
      (fun acc (a : Assignment.t) ->
        acc +. (a.duration *. float_of_int (List.length a.pairs)))
      0. plan
  in
  let demand_time = Demand.total_bytes d /. b in
  let quantum =
    Units.mb 17.3 /. b /. float_of_int Solstice.quantization_steps
  in
  (* scheduled time covers the stuffed matrix: for this 2-port demand
     stuffing adds at most the line-sum imbalance *)
  Alcotest.(check bool) "covers demand" true (total >= demand_time -. 1e-9);
  Alcotest.(check bool) "bounded blow-up" true
    (total <= (2. *. demand_time) +. (8. *. quantum))

let test_tms_ideal_variant () =
  (* the idealised variant also covers and drains, with fewer (or
     equal) assignments than the Mordia pipeline *)
  let d =
    Demand.of_list
      [ ((0, 1), Units.mb 40.); ((0, 2), Units.mb 5.); ((3, 1), Units.mb 12.) ]
  in
  let ideal = Tms.assignments ~ideal:true ~bandwidth:b d in
  let mordia = Tms.assignments ~bandwidth:b d in
  Alcotest.(check bool) "ideal covers" true (covers ~bandwidth:b d ideal);
  Alcotest.(check bool) "mordia covers" true (covers ~bandwidth:b d mordia);
  Alcotest.(check bool) "ideal not longer" true
    (List.length ideal <= List.length mordia)

let test_edmonds_adaptive_variant () =
  let c =
    Coflow.make ~id:0
      (Demand.of_list [ ((0, 1), Units.mb 10.); ((2, 3), Units.mb 1.) ])
  in
  let fixed = Edmonds.schedule ~delta ~bandwidth:b c in
  let adaptive = Edmonds.schedule ~adaptive:true ~delta ~bandwidth:b c in
  Alcotest.(check bool) "adaptive at least as fast" true
    (adaptive.cct <= fixed.cct +. 1e-9);
  Util.check_close "both drain (fixed)" 0. fixed.leftover;
  Util.check_close "both drain (adaptive)" 0. adaptive.leftover

let test_validation () =
  List.iter
    (fun (name, assignments) ->
      try
        ignore (assignments ~bandwidth:0. (Demand.of_list [ ((0, 1), 1.) ]));
        Alcotest.failf "%s accepted zero bandwidth" name
      with Invalid_argument _ -> ())
    assignments_of

let suite =
  List.concat
    [
      List.map (fun (n, a) -> prop_plan_is_sound n a) assignments_of;
      List.map (fun (n, s) -> prop_executor_drains n s) schedulers;
      List.map (fun (n, s) -> prop_cct_at_least_tpl n s) schedulers;
      [
        Alcotest.test_case "empty demands" `Quick test_empty;
        Alcotest.test_case "single flow optimal" `Quick test_single_flow_each;
        Alcotest.test_case "edmonds slot respected" `Quick
          test_edmonds_slot_respected;
        Alcotest.test_case "edmonds prefers heavy pair" `Quick
          test_edmonds_prefers_heavy;
        Alcotest.test_case "solstice quantisation bounded" `Quick
          test_solstice_quantisation_bounded;
        Alcotest.test_case "tms ideal variant" `Quick test_tms_ideal_variant;
        Alcotest.test_case "edmonds adaptive variant" `Quick
          test_edmonds_adaptive_variant;
        Alcotest.test_case "validation" `Quick test_validation;
      ];
    ]

module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let checkf = Alcotest.(check (float 1e-6))

let sample () =
  Demand.of_list
    [ ((0, 5), 10.); ((0, 6), 20.); ((1, 5), 5.); ((2, 7), 1.) ]

let test_get_set () =
  let d = Demand.create () in
  checkf "absent" 0. (Demand.get d 3 4);
  Demand.set d 3 4 7.;
  checkf "set" 7. (Demand.get d 3 4);
  Demand.set d 3 4 0.;
  checkf "zero removes" 0. (Demand.get d 3 4);
  Alcotest.(check int) "empty again" 0 (Demand.n_flows d);
  Alcotest.check_raises "negative port" (Invalid_argument "Demand: negative port id")
    (fun () -> Demand.set d (-1) 0 1.)

let test_of_list_accumulates () =
  let d = Demand.of_list [ ((1, 2), 3.); ((1, 2), 4.); ((0, 0), -5.) ] in
  checkf "accumulated" 7. (Demand.get d 1 2);
  Alcotest.(check int) "dropped non-positive" 1 (Demand.n_flows d)

let test_drain () =
  let d = sample () in
  Demand.drain d 0 5 4.;
  checkf "partial" 6. (Demand.get d 0 5);
  Demand.drain d 0 5 100.;
  checkf "clamped at zero" 0. (Demand.get d 0 5);
  Alcotest.(check int) "entry removed" 3 (Demand.n_flows d)

let test_aggregates () =
  let d = sample () in
  Alcotest.(check int) "flows" 4 (Demand.n_flows d);
  checkf "total" 36. (Demand.total_bytes d);
  checkf "row 0" 30. (Demand.row_sum d 0);
  checkf "col 5" 15. (Demand.col_sum d 5);
  Alcotest.(check (list int)) "senders" [ 0; 1; 2 ] (Demand.senders d);
  Alcotest.(check (list int)) "receivers" [ 5; 6; 7 ] (Demand.receivers d);
  Alcotest.(check int) "max port" 7 (Demand.max_port d);
  Alcotest.(check int) "max port empty" (-1) (Demand.max_port (Demand.create ()))

let test_entries_sorted () =
  let d = sample () in
  let keys = List.map fst (Demand.entries d) in
  Alcotest.(check (list (pair int int)))
    "sorted" [ (0, 5); (0, 6); (1, 5); (2, 7) ] keys

let test_scale_map_copy () =
  let d = sample () in
  let s = Demand.scale 2. d in
  checkf "scaled" 20. (Demand.get s 0 5);
  checkf "original untouched" 10. (Demand.get d 0 5);
  let m = Demand.map (fun _ _ v -> v -. 5.) d in
  checkf "mapped" 5. (Demand.get m 0 5);
  Alcotest.(check int) "non-positive dropped by map" 2 (Demand.n_flows m);
  let c = Demand.copy d in
  Demand.set c 0 5 99.;
  checkf "copy is deep" 10. (Demand.get d 0 5);
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Demand.scale: non-positive factor") (fun () ->
      ignore (Demand.scale 0. d))

let test_to_dense () =
  let d = sample () in
  let ports, m = Demand.to_dense d in
  Alcotest.(check (list int)) "port universe" [ 0; 1; 2; 5; 6; 7 ]
    (Array.to_list ports);
  checkf "entry mapped" 10. m.(0).(3);
  (* 0 -> index 0, 5 -> index 3 *)
  checkf "dense total" 36. (Sunflow_matching.Dense.total m)

let test_equal () =
  let a = sample () and b = sample () in
  Alcotest.(check bool) "equal" true (Demand.equal a b);
  Demand.set b 9 9 1.;
  Alcotest.(check bool) "extra entry" false (Demand.equal a b)

let prop_total_nonneg =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"drain never leaves negative entries" ~count:200
       QCheck2.Gen.(pair (Util.Gen.nonempty_demand ()) (float_range 0. 1e9))
       (fun (d, amount) ->
         List.iter (fun ((i, j), _) -> Demand.drain d i j amount) (Demand.entries d);
         List.for_all (fun (_, v) -> v > 0.) (Demand.entries d)
         && Demand.total_bytes d >= 0.))

let suite =
  [
    Alcotest.test_case "get set remove" `Quick test_get_set;
    Alcotest.test_case "of_list accumulates" `Quick test_of_list_accumulates;
    Alcotest.test_case "drain" `Quick test_drain;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "entries sorted" `Quick test_entries_sorted;
    Alcotest.test_case "scale map copy" `Quick test_scale_map_copy;
    Alcotest.test_case "to_dense" `Quick test_to_dense;
    Alcotest.test_case "equal" `Quick test_equal;
    prop_total_nonneg;
  ]

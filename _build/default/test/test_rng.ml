module Rng = Sunflow_stats.Rng

let test_determinism () =
  let a = Rng.create 11 and b = Rng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create 12 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.bits64 (Rng.create 11) <> Rng.bits64 c)

let test_float_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 3. in
    if x < 0. || x >= 3. then Alcotest.failf "float out of range: %f" x
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.float: bound must be positive") (fun () ->
      ignore (Rng.float rng 0.))

let test_int_range () =
  let rng = Rng.create 2 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let k = Rng.int rng 5 in
    if k < 0 || k >= 5 then Alcotest.failf "int out of range: %d" k;
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_uniform () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let x = Rng.uniform rng ~lo:2. ~hi:5. in
    if x < 2. || x >= 5. then Alcotest.failf "uniform out of range: %f" x
  done

let test_exponential_mean () =
  let rng = Rng.create 4 in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:2.
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 2.) > 0.1 then
    Alcotest.failf "exponential mean off: %f" mean

let test_lognormal_median () =
  let rng = Rng.create 5 in
  let n = 20001 in
  let samples = List.init n (fun _ -> Rng.lognormal rng ~mu:(log 7.) ~sigma:1.) in
  let median = Sunflow_stats.Descriptive.median samples in
  if Float.abs (median -. 7.) > 0.5 then Alcotest.failf "median off: %f" median

let test_pareto_support () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let x = Rng.pareto rng ~shape:1.2 ~scale:3. in
    if x < 3. then Alcotest.failf "pareto below scale: %f" x
  done

let test_shuffle_permutation () =
  let rng = Rng.create 7 in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle_list rng l in
  Alcotest.(check (list int)) "same elements" l (List.sort compare s);
  Alcotest.(check bool) "actually shuffled" true (s <> l)

let test_choose_weighted () =
  let rng = Rng.create 8 in
  (* zero-weight option must never be picked *)
  for _ = 1 to 200 do
    match Rng.choose_weighted rng [ (0., `Never); (1., `Always) ] with
    | `Never -> Alcotest.fail "picked zero-weight option"
    | `Always -> ()
  done;
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.choose_weighted: weights sum to zero") (fun () ->
      ignore (Rng.choose_weighted rng [ (0., 1) ]))

let test_split_independence () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* child's stream differs from the parent's continued stream *)
  Alcotest.(check bool) "differs" true (Rng.bits64 child <> Rng.bits64 parent)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "uniform range" `Quick test_uniform;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "choose weighted" `Quick test_choose_weighted;
    Alcotest.test_case "split independence" `Quick test_split_independence;
  ]

module Inter = Sunflow_core.Inter
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Prt = Sunflow_core.Prt
module Schedule = Sunflow_core.Schedule
module Sunflow = Sunflow_core.Sunflow

let b = Units.gbps 1.
let delta = Units.ms 10.

let mk id ?(arrival = 0.) flows = Coflow.make ~id ~arrival (Demand.of_list flows)

let big = mk 1 [ ((0, 5), Units.mb 100.) ]
let small = mk 2 ~arrival:1. [ ((0, 6), Units.mb 5.) ]

let test_sort_policies () =
  let ids policy cs = List.map (fun c -> c.Coflow.id) (Inter.sort policy ~bandwidth:b cs) in
  Alcotest.(check (list int)) "fifo by arrival" [ 1; 2 ]
    (ids Inter.Fifo [ small; big ]);
  Alcotest.(check (list int)) "shortest first" [ 2; 1 ]
    (ids Inter.Shortest_first [ big; small ]);
  Alcotest.(check (list int)) "classes override size" [ 1; 2 ]
    (ids
       (Inter.Priority_classes (fun c -> if c.Coflow.id = 1 then 0 else 1))
       [ small; big ]);
  Alcotest.(check (list int)) "custom comparator" [ 2; 1 ]
    (ids (Inter.Custom (fun a b -> compare b.Coflow.id a.Coflow.id)) [ big; small ])

let test_priority_unblocked () =
  (* the prioritized Coflow must finish exactly as if it were alone *)
  let alone = (Sunflow.schedule ~delta ~bandwidth:b small).finish in
  let r =
    Inter.schedule ~policy:Inter.Shortest_first ~delta ~bandwidth:b
      [ big; small ]
  in
  (match Inter.finish_of r small.Coflow.id with
  | Some f -> Util.check_close "small unblocked" alone f
  | None -> Alcotest.fail "small missing");
  match Schedule.check_port_constraints (Prt.all_reservations r.Inter.prt) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_lower_priority_shortened () =
  (* Fig. 2: contention on In 0 - the lower-priority Coflow must yield
     the port and finish later than it would alone *)
  let c1 = mk 1 [ ((0, 5), Units.mb 10.) ] in
  let c2 = mk 2 [ ((0, 6), Units.mb 10.) ] in
  let r =
    Inter.schedule
      ~policy:(Inter.Priority_classes (fun c -> c.Coflow.id))
      ~delta ~bandwidth:b [ c2; c1 ]
  in
  let f1 = Option.get (Inter.finish_of r 1) in
  let f2 = Option.get (Inter.finish_of r 2) in
  Util.check_close "priority Coflow alone-speed" 0.09 f1;
  Alcotest.(check bool) "lower priority waits" true (f2 > 0.09 +. 0.08);
  match Schedule.check_port_constraints (Prt.all_reservations r.Inter.prt) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_established_shared () =
  (* a circuit left up can be reused without delta by the first Coflow
     whose reservation starts immediately *)
  let c = mk 7 [ ((3, 4), Units.mb 10.) ] in
  let r =
    Inter.schedule ~established:[ (3, 4) ] ~policy:Inter.Fifo ~delta
      ~bandwidth:b [ c ]
  in
  Util.check_close "no delta" 0.08 (Option.get (Inter.finish_of r 7))

let test_empty_coflow_in_plan () =
  let c = Coflow.make ~id:9 (Demand.create ()) in
  let r = Inter.schedule ~now:2. ~policy:Inter.Fifo ~delta ~bandwidth:b [ c ] in
  Util.check_close "finishes at now" 2. (Option.get (Inter.finish_of r 9))

let test_duplicate_ids_rejected () =
  (* regression: duplicate ids used to be accepted, and finish_of then
     silently returned the first match's finish time *)
  let a = mk 3 [ ((0, 5), Units.mb 10.) ] in
  let b' = mk 3 ~arrival:1. [ ((1, 6), Units.mb 20.) ] in
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Inter.schedule: duplicate Coflow ids") (fun () ->
      ignore (Inter.schedule ~policy:Inter.Fifo ~delta ~bandwidth:b [ a; b' ]));
  (* distinct ids still schedule fine *)
  let r =
    Inter.schedule ~policy:Inter.Fifo ~delta ~bandwidth:b
      [ a; { b' with Coflow.id = 4 } ]
  in
  Alcotest.(check bool) "both planned" true
    (Inter.finish_of r 3 <> None && Inter.finish_of r 4 <> None)

let prop_all_port_constraints =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"multi-Coflow plans always respect port constraints" ~count:200
       QCheck2.Gen.(list_size (int_range 1 5) (Util.Gen.coflow ~n_ports:5 ()))
       (fun coflows ->
         (* make ids unique *)
         let coflows = List.mapi (fun i c -> { c with Coflow.id = i }) coflows in
         let r =
           Inter.schedule ~policy:Inter.Shortest_first ~delta ~bandwidth:b
             coflows
         in
         match
           Schedule.check_port_constraints (Prt.all_reservations r.Inter.prt)
         with
         | Ok _ -> true
         | Error _ -> false))

let prop_highest_priority_alone_speed =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"the highest-priority Coflow is never blocked" ~count:200
       QCheck2.Gen.(list_size (int_range 1 4) (Util.Gen.coflow ~n_ports:5 ()))
       (fun coflows ->
         let coflows = List.mapi (fun i c -> { c with Coflow.id = i }) coflows in
         let first =
           List.hd (Inter.sort Inter.Shortest_first ~bandwidth:b coflows)
         in
         let alone = (Sunflow.schedule ~delta ~bandwidth:b first).finish in
         let r =
           Inter.schedule ~policy:Inter.Shortest_first ~delta ~bandwidth:b
             coflows
         in
         match Inter.finish_of r first.Coflow.id with
         | Some f -> Util.close ~eps:1e-9 alone f
         | None -> false))

let test_policy_names () =
  Alcotest.(check string) "fifo" "fifo" (Inter.policy_name Inter.Fifo);
  Alcotest.(check string) "scf" "shortest-coflow-first"
    (Inter.policy_name Inter.Shortest_first)

let suite =
  [
    Alcotest.test_case "sort policies" `Quick test_sort_policies;
    Alcotest.test_case "priority unblocked" `Quick test_priority_unblocked;
    Alcotest.test_case "lower priority shortened" `Quick
      test_lower_priority_shortened;
    Alcotest.test_case "established shared" `Quick test_established_shared;
    Alcotest.test_case "empty coflow" `Quick test_empty_coflow_in_plan;
    Alcotest.test_case "duplicate ids rejected" `Quick
      test_duplicate_ids_rejected;
    prop_all_port_constraints;
    prop_highest_priority_alone_speed;
    Alcotest.test_case "policy names" `Quick test_policy_names;
  ]

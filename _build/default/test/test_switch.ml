(* The executable switch model: state machine invariants, VOQ
   semantics, and the controller as a ground-truth oracle - every
   scheduler's plan must execute physically with zero leftover and the
   predicted completion time. *)

module Ocs = Sunflow_switch.Ocs
module Voq = Sunflow_switch.Voq
module Controller = Sunflow_switch.Controller
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Sunflow = Sunflow_core.Sunflow
module Inter = Sunflow_core.Inter
module Prt = Sunflow_core.Prt

let delta = Units.ms 10.
let b = Units.gbps 1.

(* --- Ocs --- *)

let test_ocs_lifecycle () =
  let ocs = Ocs.create ~n_ports:4 ~delta in
  (match Ocs.connect ocs ~src:0 ~dst:1 with
  | Ok ready -> Util.check_close "ready after delta" delta ready
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "not up during setup" false (Ocs.circuit_up ocs ~src:0 ~dst:1);
  Ocs.advance ocs delta;
  Alcotest.(check bool) "up after setup" true (Ocs.circuit_up ocs ~src:0 ~dst:1);
  Alcotest.(check (list (pair int int))) "established" [ (0, 1) ] (Ocs.established ocs);
  (match Ocs.disconnect ocs ~src:0 ~dst:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "down after teardown" false (Ocs.circuit_up ocs ~src:0 ~dst:1);
  Alcotest.(check int) "one switching" 1 (Ocs.switch_count ocs);
  Ocs.assert_consistent ocs

let test_ocs_port_constraint () =
  let ocs = Ocs.create ~n_ports:4 ~delta in
  ignore (Ocs.connect ocs ~src:0 ~dst:1);
  (match Ocs.connect ocs ~src:0 ~dst:2 with
  | Ok _ -> Alcotest.fail "input port double-booked"
  | Error e -> Alcotest.(check bool) "names the port" true (Util.contains e "port 0"));
  (match Ocs.connect ocs ~src:3 ~dst:1 with
  | Ok _ -> Alcotest.fail "output port double-booked"
  | Error _ -> ());
  (* an unrelated circuit is fine while the first configures:
     the not-all-stop property *)
  match Ocs.connect ocs ~src:2 ~dst:3 with
  | Ok _ -> Ocs.assert_consistent ocs
  | Error e -> Alcotest.fail e

let test_ocs_not_all_stop () =
  (* an established circuit keeps carrying light while another
     reconfigures *)
  let ocs = Ocs.create ~n_ports:4 ~delta in
  ignore (Ocs.connect ocs ~src:0 ~dst:1);
  Ocs.advance ocs delta;
  ignore (Ocs.connect ocs ~src:2 ~dst:3);
  Alcotest.(check bool) "first still up" true (Ocs.circuit_up ocs ~src:0 ~dst:1);
  Alcotest.(check bool) "second not yet" false (Ocs.circuit_up ocs ~src:2 ~dst:3)

let test_ocs_zero_delta () =
  let ocs = Ocs.create ~n_ports:2 ~delta:0. in
  ignore (Ocs.connect ocs ~src:0 ~dst:0);
  Alcotest.(check bool) "instant" true (Ocs.circuit_up ocs ~src:0 ~dst:0)

let test_ocs_validation () =
  let ocs = Ocs.create ~n_ports:2 ~delta in
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Ocs.advance: time moved backwards") (fun () ->
      Ocs.advance ocs 1.;
      Ocs.advance ocs 0.5);
  (match Ocs.disconnect ocs ~src:0 ~dst:1 with
  | Ok () -> Alcotest.fail "disconnected a missing circuit"
  | Error _ -> ());
  Alcotest.check_raises "port range"
    (Invalid_argument "Ocs.connect: port 5 outside [0, 2)") (fun () ->
      ignore (Ocs.connect ocs ~src:5 ~dst:0))

(* --- Voq --- *)

let test_voq_fifo () =
  let voq = Voq.create ~n_ports:4 ~bandwidth:100. in
  Voq.enqueue voq ~src:0 ~dst:1 ~coflow:7 500.;
  Voq.enqueue voq ~src:0 ~dst:1 ~coflow:8 300.;
  Util.check_close "backlog" 800. (Voq.backlog voq ~src:0 ~dst:1);
  (* 6 seconds moves 600 bytes: all of coflow 7 and 100 of coflow 8 *)
  let moved = Voq.drain voq ~src:0 ~dst:1 ~seconds:6. in
  Alcotest.(check (list (pair int (float 1e-9))))
    "fifo order"
    [ (7, 500.); (8, 100.) ]
    (List.map (fun (d : Voq.delivery) -> (d.coflow, d.bytes)) moved);
  Util.check_close "remaining" 200. (Voq.backlog voq ~src:0 ~dst:1)

let test_voq_targeted_drain () =
  let voq = Voq.create ~n_ports:4 ~bandwidth:100. in
  Voq.enqueue voq ~src:0 ~dst:1 ~coflow:7 500.;
  Voq.enqueue voq ~src:0 ~dst:1 ~coflow:8 300.;
  (* serve only coflow 8, skipping 7's head-of-line bytes *)
  let moved = Voq.drain ~coflow:8 voq ~src:0 ~dst:1 ~seconds:10. in
  Alcotest.(check (list (pair int (float 1e-9))))
    "only coflow 8" [ (8, 300.) ]
    (List.map (fun (d : Voq.delivery) -> (d.coflow, d.bytes)) moved);
  Util.check_close "coflow 7 untouched" 500. (Voq.coflow_backlog voq ~coflow:7);
  (* 7 still drains fine afterwards *)
  let moved' = Voq.drain voq ~src:0 ~dst:1 ~seconds:10. in
  Util.check_close "then coflow 7" 500.
    (List.fold_left (fun a (d : Voq.delivery) -> a +. d.bytes) 0. moved')

let test_voq_validation () =
  let voq = Voq.create ~n_ports:2 ~bandwidth:10. in
  Alcotest.check_raises "bytes" (Invalid_argument "Voq.enqueue: non-positive bytes")
    (fun () -> Voq.enqueue voq ~src:0 ~dst:1 ~coflow:0 0.);
  Alcotest.check_raises "port" (Invalid_argument "Voq: port outside the fabric")
    (fun () -> Voq.enqueue voq ~src:5 ~dst:1 ~coflow:0 1.);
  Alcotest.(check bool) "empty" true (Voq.is_empty voq)

(* --- Controller as oracle --- *)

let physical_check ~coflows plan =
  let from_coflows =
    List.fold_left
      (fun acc (c : Coflow.t) -> max acc (Demand.max_port c.demand))
      0 coflows
  in
  let n_ports =
    1
    + List.fold_left
        (fun acc (r : Prt.reservation) -> max acc (max r.src r.dst))
        from_coflows plan
  in
  Controller.execute ~delta ~bandwidth:b ~n_ports ~coflows ~plan

let test_controller_single_coflow () =
  let c = Coflow.make ~id:3 (Demand.of_list [ ((0, 1), Units.mb 10.) ]) in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  match physical_check ~coflows:[ c ] r.reservations with
  | Error e -> Alcotest.fail e
  | Ok report ->
    Util.check_close "drained" 0. report.leftover;
    Alcotest.(check int) "one switching" 1 report.switch_count;
    Util.check_close "finish matches plan" r.finish
      (List.assoc 3 report.finish_times)

let test_controller_rejects_busy_port () =
  let bad =
    [
      { Prt.coflow = 0; src = 0; dst = 1; start = 0.; setup = delta; length = 1. };
      { Prt.coflow = 0; src = 0; dst = 2; start = 0.5; setup = delta; length = 1. };
    ]
  in
  match physical_check ~coflows:[] bad with
  | Ok _ -> Alcotest.fail "double-booked plan accepted"
  | Error e -> Alcotest.(check bool) "explains" true (Util.contains e "port 0")

let test_controller_rejects_short_setup () =
  let bad =
    [ { Prt.coflow = 0; src = 0; dst = 1; start = 0.; setup = 1e-4; length = 1. } ]
  in
  match physical_check ~coflows:[] bad with
  | Ok _ -> Alcotest.fail "sub-delta setup accepted"
  | Error e -> Alcotest.(check bool) "explains" true (Util.contains e "setup")

let test_controller_rejects_cold_zero_setup () =
  let bad =
    [ { Prt.coflow = 0; src = 0; dst = 1; start = 0.; setup = 0.; length = 1. } ]
  in
  match physical_check ~coflows:[] bad with
  | Ok _ -> Alcotest.fail "cold zero-setup accepted"
  | Error e -> Alcotest.(check bool) "explains" true (Util.contains e "down")

let test_controller_circuit_continuation () =
  (* back-to-back reservations of the same circuit: one physical
     switching, light stays on *)
  let plan =
    [
      { Prt.coflow = 0; src = 0; dst = 1; start = 0.; setup = delta; length = 0.5 };
      { Prt.coflow = 0; src = 0; dst = 1; start = 0.5; setup = 0.; length = 0.5 };
    ]
  in
  let c =
    Coflow.make ~id:0 (Demand.of_list [ ((0, 1), b *. (1. -. delta)) ])
  in
  match physical_check ~coflows:[ c ] plan with
  | Error e -> Alcotest.fail e
  | Ok report ->
    Alcotest.(check int) "one switching" 1 report.switch_count;
    Util.check_close "drained across the boundary" 0. report.leftover

let prop_sunflow_plans_physical =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"Sunflow plans execute physically: drained, on time, minimal switching"
       ~count:200
       (Util.Gen.coflow ~n_ports:5 ~max_flows:8 ())
       (fun c ->
         let r = Sunflow.schedule ~delta ~bandwidth:b c in
         match physical_check ~coflows:[ c ] r.reservations with
         | Error _ -> false
         | Ok report ->
           Util.close ~eps:1e-6 0. (report.leftover /. Float.max 1. (Coflow.total_bytes c))
           && report.switch_count = Coflow.n_subflows c
           && Util.close ~eps:1e-9 r.finish
                (List.assoc c.Coflow.id report.finish_times)))

let prop_baseline_plans_physical name schedule =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:(name ^ " executor plans execute physically with matching CCT")
       ~count:100
       (Util.Gen.coflow ~n_ports:5 ~max_flows:8 ())
       (fun c ->
         (* executor reservations are tagged coflow 0 *)
         let c = { c with Coflow.id = 0 } in
         let (o : Sunflow_baselines.Executor.outcome) =
           schedule ~delta ~bandwidth:b c
         in
         match physical_check ~coflows:[ c ] o.reservations with
         | Error _ -> false
         | Ok report ->
           Util.close ~eps:1e-6 0.
             (report.leftover /. Float.max 1. (Coflow.total_bytes c))
           && Util.close ~eps:1e-6 o.cct (List.assoc 0 report.finish_times)))

let prop_inter_plans_physical =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"inter-Coflow plans execute physically"
       ~count:100
       QCheck2.Gen.(list_size (int_range 1 4) (Util.Gen.coflow ~n_ports:5 ()))
       (fun coflows ->
         let coflows = List.mapi (fun i c -> { c with Coflow.id = i }) coflows in
         let plan =
           Inter.schedule ~policy:Inter.Shortest_first ~delta ~bandwidth:b
             coflows
         in
         match
           physical_check ~coflows (Prt.all_reservations plan.Inter.prt)
         with
         | Error _ -> false
         | Ok report ->
           let total =
             List.fold_left (fun a c -> a +. Coflow.total_bytes c) 0. coflows
           in
           Util.close ~eps:1e-6 0. (report.leftover /. Float.max 1. total)
           && List.for_all
                (fun (c : Coflow.t) ->
                  match
                    ( List.assoc_opt c.id report.finish_times,
                      Inter.finish_of plan c.id )
                  with
                  | Some physical, Some planned ->
                    Util.close ~eps:1e-9 physical planned
                  | _ -> false)
                coflows))

let suite =
  [
    Alcotest.test_case "ocs lifecycle" `Quick test_ocs_lifecycle;
    Alcotest.test_case "ocs port constraint" `Quick test_ocs_port_constraint;
    Alcotest.test_case "ocs not-all-stop" `Quick test_ocs_not_all_stop;
    Alcotest.test_case "ocs zero delta" `Quick test_ocs_zero_delta;
    Alcotest.test_case "ocs validation" `Quick test_ocs_validation;
    Alcotest.test_case "voq fifo" `Quick test_voq_fifo;
    Alcotest.test_case "voq targeted drain" `Quick test_voq_targeted_drain;
    Alcotest.test_case "voq validation" `Quick test_voq_validation;
    Alcotest.test_case "controller: single coflow" `Quick
      test_controller_single_coflow;
    Alcotest.test_case "controller: busy port rejected" `Quick
      test_controller_rejects_busy_port;
    Alcotest.test_case "controller: short setup rejected" `Quick
      test_controller_rejects_short_setup;
    Alcotest.test_case "controller: cold zero-setup rejected" `Quick
      test_controller_rejects_cold_zero_setup;
    Alcotest.test_case "controller: circuit continuation" `Quick
      test_controller_circuit_continuation;
    prop_sunflow_plans_physical;
    prop_inter_plans_physical;
    prop_baseline_plans_physical "solstice" (fun ~delta ~bandwidth c ->
        Sunflow_baselines.Solstice.schedule ~delta ~bandwidth c);
    prop_baseline_plans_physical "tms" (fun ~delta ~bandwidth c ->
        Sunflow_baselines.Tms.schedule ~delta ~bandwidth c);
    prop_baseline_plans_physical "edmonds" (fun ~delta ~bandwidth c ->
        Sunflow_baselines.Edmonds.schedule ~delta ~bandwidth c);
  ]

(* The heart of the reproduction: Algorithm 1 and its proven
   guarantees, property-tested over random Coflows, delays, link rates
   and reservation orderings. *)

module Sunflow = Sunflow_core.Sunflow
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Units = Sunflow_core.Units
module Order = Sunflow_core.Order
module Prt = Sunflow_core.Prt
module Schedule = Sunflow_core.Schedule

let b = Units.gbps 1.
let delta = Units.ms 10.

let test_empty_coflow () =
  let c = Coflow.make ~id:0 (Demand.create ()) in
  let r = Sunflow.schedule ~now:3. ~delta ~bandwidth:b c in
  Util.check_close "finish at now" 3. r.finish;
  Alcotest.(check int) "no reservations" 0 (List.length r.reservations)

let test_single_flow () =
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), Units.mb 10.) ]) in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  (* one circuit: delta + 80 ms *)
  Util.check_close "finish" 0.09 r.finish;
  Alcotest.(check int) "one setup" 1 r.setups;
  match r.reservations with
  | [ res ] ->
    Util.check_close "setup is delta" delta res.Prt.setup;
    Util.check_close "transmission" 0.08 (Prt.transmission res)
  | _ -> Alcotest.fail "expected exactly one reservation"

let test_fig1_style_dense () =
  (* the 5x2 shape of the paper's Fig. 1: column sums dominate; Sunflow
     should achieve the lower bound exactly on this instance *)
  let d =
    Demand.of_list
      (List.concat_map
         (fun i -> [ ((i, 6), Units.mb 20.); ((i, 7), Units.mb 10.) ])
         [ 1; 2; 3; 4; 5 ])
  in
  let c = Coflow.make ~id:0 d in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  let tcl = Bounds.circuit_lower ~bandwidth:b ~delta d in
  Util.check_close "achieves the bound" tcl r.finish

let test_single_line_optimal () =
  (* §5.3.1: O2O, O2M and M2O Coflows finish exactly at T_L^c *)
  let cases =
    [
      [ ((0, 9), Units.mb 3.) ];
      [ ((0, 5), Units.mb 3.); ((0, 6), Units.mb 7.); ((0, 7), Units.mb 1.) ];
      [ ((1, 9), Units.mb 2.); ((2, 9), Units.mb 2.); ((3, 9), Units.mb 8.) ];
    ]
  in
  List.iter
    (fun flows ->
      let d = Demand.of_list flows in
      let r = Sunflow.schedule ~delta ~bandwidth:b (Coflow.make ~id:0 d) in
      Util.check_close "optimal" (Bounds.circuit_lower ~bandwidth:b ~delta d)
        r.finish)
    cases

let drained_exactly ~bandwidth (c : Coflow.t) reservations =
  (* every flow receives exactly its demand in transmission time *)
  let moved : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (res : Prt.reservation) ->
      let k = (res.src, res.dst) in
      let prev = Option.value ~default:0. (Hashtbl.find_opt moved k) in
      Hashtbl.replace moved k (prev +. (Prt.transmission res *. bandwidth)))
    reservations;
  List.for_all
    (fun ((i, j), bytes) ->
      Util.close ~eps:1e-6
        (Option.value ~default:0. (Hashtbl.find_opt moved (i, j)))
        bytes)
    (Demand.entries c.Coflow.demand)
  && Hashtbl.length moved = Demand.n_flows c.Coflow.demand

let scenario_gen =
  QCheck2.Gen.(
    let* c = Util.Gen.coflow ~n_ports:6 ~max_flows:10 () in
    let* dlt = oneofl [ 1e-5; 1e-3; 1e-2; 0.1 ] in
    let* bw = oneofl [ Units.gbps 1.; Units.gbps 10.; Units.gbps 100. ] in
    let* order =
      oneofl
        [
          Order.Ordered_port;
          Order.Sorted_demand_desc;
          Order.Sorted_demand_asc;
          Order.Shuffled 5;
        ]
    in
    pure (c, dlt, bw, order))

let prop_lemma1 =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"Lemma 1: CCT <= 2 T_L^c for any delta, B, demand, ordering"
       ~count:500 scenario_gen
       (fun (c, dlt, bw, order) ->
         let r = Sunflow.schedule ~order ~delta:dlt ~bandwidth:bw c in
         let tcl = Bounds.circuit_lower ~bandwidth:bw ~delta:dlt c.demand in
         r.finish <= (2. *. tcl) +. 1e-9))

let prop_lemma2 =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Lemma 2: CCT <= 2 (1 + alpha) T_L^p" ~count:500
       scenario_gen
       (fun (c, dlt, bw, order) ->
         let r = Sunflow.schedule ~order ~delta:dlt ~bandwidth:bw c in
         let tpl = Bounds.packet_lower ~bandwidth:bw c.demand in
         let alpha = Bounds.alpha ~bandwidth:bw ~delta:dlt c.demand in
         r.finish <= (2. *. (1. +. alpha) *. tpl) +. 1e-9))

let prop_port_constraints_and_coverage =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"schedule respects port constraints and drains demand exactly"
       ~count:500 scenario_gen
       (fun (c, dlt, bw, order) ->
         let r = Sunflow.schedule ~order ~delta:dlt ~bandwidth:bw c in
         (match Schedule.check_port_constraints r.reservations with
         | Ok _ -> true
         | Error _ -> false)
         && drained_exactly ~bandwidth:bw c r.reservations))

let prop_minimal_switching =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"on an idle fabric the switching count equals |C|" ~count:300
       scenario_gen
       (fun (c, dlt, bw, order) ->
         let r = Sunflow.schedule ~order ~delta:dlt ~bandwidth:bw c in
         r.setups = Coflow.n_subflows c
         && List.length r.reservations = Coflow.n_subflows c))

let test_established_reuse () =
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), Units.mb 10.) ]) in
  let r =
    Sunflow.schedule ~established:(fun p -> p = (0, 1)) ~delta ~bandwidth:b c
  in
  Util.check_close "no setup paid" 0.08 r.finish;
  Alcotest.(check int) "zero setups" 0 r.setups

let test_established_only_at_now () =
  (* a second flow on the same input port starts later and must pay the
     delta even though its circuit was once established *)
  let c =
    Coflow.make ~id:0
      (Demand.of_list [ ((0, 1), Units.mb 10.); ((0, 2), Units.mb 10.) ])
  in
  let r = Sunflow.schedule ~established:(fun _ -> true) ~delta ~bandwidth:b c in
  Alcotest.(check int) "second circuit pays" 1 r.setups

let test_respects_existing_reservations () =
  (* a higher-priority reservation blocks the port; the new Coflow must
     schedule around it without preempting *)
  let prt = Prt.create () in
  Prt.reserve prt
    { Prt.coflow = 99; src = 0; dst = 1; start = 0.; setup = delta; length = 1. };
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 2), Units.mb 10.) ]) in
  let r = Sunflow.schedule ~prt ~delta ~bandwidth:b c in
  (* port In 0 is busy until t=1 *)
  Util.check_close "waits for release" 1.09 r.finish;
  match Schedule.check_port_constraints (Prt.all_reservations prt) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_partial_reservation_before_blocker () =
  (* Fig. 2's C2 case: a future reservation caps the usable window, so
     the flow transmits a first slice and finishes after the blocker *)
  let prt = Prt.create () in
  Prt.reserve prt
    { Prt.coflow = 99; src = 0; dst = 1; start = 0.5; setup = delta; length = 1. };
  (* flow 0 -> 2 needs 0.8 s + delta; only 0.5 s available before the
     blocker takes In 0 *)
  let c = Coflow.make ~id:1 (Demand.of_list [ ((0, 2), Units.mb 100.) ]) in
  let r = Sunflow.schedule ~prt ~delta ~bandwidth:b c in
  Alcotest.(check int) "two reservations" 2 (List.length r.reservations);
  Alcotest.(check int) "two setups" 2 r.setups;
  (* slice 1: [0, 0.5) moving 0.49 s of data; slice 2 after the blocker:
     delta + 0.31 s -> finish at 1.5 + 0.32 *)
  Util.check_close "finish" 1.82 r.finish;
  (match Schedule.check_port_constraints (Prt.all_reservations prt) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "demand covered" true
    (drained_exactly ~bandwidth:b c r.reservations)

let test_quantum_approximation () =
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), Units.mb 10.) ]) in
  (* 80 ms rounded up to 100 ms quantum *)
  let r = Sunflow.schedule ~quantum:0.1 ~delta ~bandwidth:b c in
  Util.check_close "rounded" 0.11 r.finish

let test_validation () =
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), 1.) ]) in
  Alcotest.check_raises "bandwidth"
    (Invalid_argument "Sunflow.schedule: bandwidth <= 0") (fun () ->
      ignore (Sunflow.schedule ~delta ~bandwidth:0. c));
  Alcotest.check_raises "delta"
    (Invalid_argument "Sunflow.schedule: negative delta") (fun () ->
      ignore (Sunflow.schedule ~delta:(-1.) ~bandwidth:b c));
  Alcotest.check_raises "now"
    (Invalid_argument "Sunflow.schedule: negative start time") (fun () ->
      ignore (Sunflow.schedule ~now:(-1.) ~delta ~bandwidth:b c))

let test_cct_wrapper () =
  let c = Coflow.make ~id:0 ~arrival:55. (Demand.of_list [ ((0, 1), Units.mb 10.) ]) in
  (* arrival is ignored: scheduling starts at 0 *)
  Util.check_close "default setting" 0.09 (Sunflow.cct c)

let suite =
  [
    Alcotest.test_case "empty coflow" `Quick test_empty_coflow;
    Alcotest.test_case "single flow" `Quick test_single_flow;
    Alcotest.test_case "fig1-style dense optimal" `Quick test_fig1_style_dense;
    Alcotest.test_case "single-line optimal" `Quick test_single_line_optimal;
    prop_lemma1;
    prop_lemma2;
    prop_port_constraints_and_coverage;
    prop_minimal_switching;
    Alcotest.test_case "established circuit reuse" `Quick test_established_reuse;
    Alcotest.test_case "established only at start" `Quick
      test_established_only_at_now;
    Alcotest.test_case "respects existing reservations" `Quick
      test_respects_existing_reservations;
    Alcotest.test_case "partial reservation before blocker" `Quick
      test_partial_reservation_before_blocker;
    Alcotest.test_case "quantum approximation" `Quick test_quantum_approximation;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "cct wrapper" `Quick test_cct_wrapper;
  ]

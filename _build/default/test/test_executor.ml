module Assignment = Sunflow_baselines.Assignment
module Executor = Sunflow_baselines.Executor
module Schedule = Sunflow_core.Schedule

let test_assignment_validation () =
  Alcotest.check_raises "duplicate input"
    (Invalid_argument "Assignment.make: pairs are not a one-to-one matching")
    (fun () ->
      ignore (Assignment.make ~pairs:[ (0, 1); (0, 2) ] ~duration:1.));
  Alcotest.check_raises "duplicate output"
    (Invalid_argument "Assignment.make: pairs are not a one-to-one matching")
    (fun () ->
      ignore (Assignment.make ~pairs:[ (0, 1); (2, 1) ] ~duration:1.));
  Alcotest.check_raises "zero duration"
    (Invalid_argument "Assignment.make: non-positive duration") (fun () ->
      ignore (Assignment.make ~pairs:[ (0, 1) ] ~duration:0.))

let test_changed_from () =
  let a = Assignment.make ~pairs:[ (0, 1); (2, 3) ] ~duration:1. in
  let b = Assignment.make ~pairs:[ (0, 1); (2, 4) ] ~duration:1. in
  Alcotest.(check (list (pair int int))) "all new without previous"
    [ (0, 1); (2, 3) ]
    (Assignment.changed_from ~previous:None a);
  Alcotest.(check (list (pair int int))) "only the moved circuit" [ (2, 4) ]
    (Assignment.changed_from ~previous:(Some a) b)

let delta = 0.1

let test_single_assignment () =
  let plan = [ Assignment.make ~pairs:[ (0, 1) ] ~duration:1. ] in
  let o = Executor.run ~delta ~demand_time:[ ((0, 1), 0.6) ] plan in
  (* reconfig 0.1 then 0.6 s of the 1 s slot drains the demand *)
  Util.check_close "cct" 0.7 o.cct;
  Alcotest.(check int) "one switching" 1 o.switching_count;
  Util.check_close "no leftover" 0. o.leftover

let test_persistent_circuit_transmits_through_reconfig () =
  (* (0,1) persists across assignments: during the second reconfig
     window it keeps draining, so demand 1.0 + 0.1 + 0.4 finishes
     exactly at the end of the second window's transmission start +0.3 *)
  let plan =
    [
      Assignment.make ~pairs:[ (0, 1) ] ~duration:1.;
      Assignment.make ~pairs:[ (0, 1); (2, 3) ] ~duration:1.;
    ]
  in
  let o = Executor.run ~delta ~demand_time:[ ((0, 1), 1.4) ] plan in
  (* timeline: [0,0.1) reconfig; [0.1,1.1) drains 1.0; [1.1,1.2) second
     reconfig but (0,1) persists and drains 0.1; remaining 0.3 drains by
     1.5 *)
  Util.check_close "cct" 1.5 o.cct;
  Alcotest.(check int) "switchings" 2 o.switching_count;
  Util.check_close "drained" 0. o.leftover

let test_identical_consecutive_assignments_free () =
  let a = Assignment.make ~pairs:[ (0, 1) ] ~duration:0.5 in
  let o = Executor.run ~delta ~demand_time:[ ((0, 1), 1.0) ] [ a; a ] in
  (* one reconfig, then continuous transmission *)
  Util.check_close "cct" 1.1 o.cct;
  Alcotest.(check int) "one switching" 1 o.switching_count

let test_stops_at_completion () =
  let plan =
    [
      Assignment.make ~pairs:[ (0, 1) ] ~duration:1.;
      Assignment.make ~pairs:[ (5, 6) ] ~duration:100.;
    ]
  in
  let o = Executor.run ~delta ~demand_time:[ ((0, 1), 0.2) ] plan in
  Alcotest.(check int) "second assignment never played" 1 o.assignments_used

let test_leftover_reported () =
  let plan = [ Assignment.make ~pairs:[ (0, 1) ] ~duration:0.2 ] in
  let o = Executor.run ~delta ~demand_time:[ ((0, 1), 1.0) ] plan in
  Util.check_close "leftover" 0.8 o.leftover

let test_reservations_check () =
  let plan =
    [
      Assignment.make ~pairs:[ (0, 1); (1, 0) ] ~duration:1.;
      Assignment.make ~pairs:[ (0, 0); (1, 1) ] ~duration:1.;
    ]
  in
  let o =
    Executor.run ~delta ~demand_time:[ ((0, 1), 0.5); ((1, 1), 1.2) ] plan
  in
  match Schedule.check_port_constraints o.reservations with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_validation () =
  Alcotest.check_raises "negative delta"
    (Invalid_argument "Executor.run: negative delta") (fun () ->
      ignore (Executor.run ~delta:(-1.) ~demand_time:[] []));
  Alcotest.check_raises "bad demand"
    (Invalid_argument "Executor.run: non-positive demand entry") (fun () ->
      ignore (Executor.run ~delta ~demand_time:[ ((0, 1), 0.) ] []))

let test_empty_demand () =
  let o = Executor.run ~delta ~demand_time:[] [] in
  Util.check_close "zero cct" 0. o.cct;
  Alcotest.(check int) "nothing played" 0 o.assignments_used

let suite =
  [
    Alcotest.test_case "assignment validation" `Quick test_assignment_validation;
    Alcotest.test_case "changed_from" `Quick test_changed_from;
    Alcotest.test_case "single assignment" `Quick test_single_assignment;
    Alcotest.test_case "persistence through reconfig" `Quick
      test_persistent_circuit_transmits_through_reconfig;
    Alcotest.test_case "identical assignments free" `Quick
      test_identical_consecutive_assignments_free;
    Alcotest.test_case "stops at completion" `Quick test_stops_at_completion;
    Alcotest.test_case "leftover reported" `Quick test_leftover_reported;
    Alcotest.test_case "reservations obey port constraints" `Quick
      test_reservations_check;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "empty demand" `Quick test_empty_demand;
  ]

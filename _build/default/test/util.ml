(* Shared test helpers: substring checks, approximate float comparison,
   and QCheck generators for demands and Coflows. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let close ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let check_close ?eps msg expected actual =
  if not (close ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

module Gen = struct
  open QCheck2.Gen

  (* A sparse demand over a small fabric: up to [max_flows] flows with
     megabyte-scale sizes. *)
  let demand ?(n_ports = 8) ?(max_flows = 12) () =
    let* n = int_range 1 max_flows in
    let* entries =
      list_size (pure n)
        (triple (int_range 0 (n_ports - 1)) (int_range 0 (n_ports - 1))
           (float_range 0.1 64.))
    in
    pure
      (Sunflow_core.Demand.of_list
         (List.map
            (fun (i, j, mb) -> ((i, j), Sunflow_core.Units.mb mb))
            entries))

  let nonempty_demand ?n_ports ?max_flows () =
    let* d = demand ?n_ports ?max_flows () in
    if Sunflow_core.Demand.is_empty d then
      pure
        (Sunflow_core.Demand.of_list [ ((0, 1), Sunflow_core.Units.mb 1.) ])
    else pure d

  let coflow ?n_ports ?max_flows () =
    let* d = nonempty_demand ?n_ports ?max_flows () in
    let* id = int_range 0 1000 in
    pure (Sunflow_core.Coflow.make ~id d)

  (* Balanced (equal line sums) small dense matrix, built by stuffing a
     random non-negative one. *)
  let balanced_dense ?(n = 5) () =
    let* rows =
      list_size (pure n) (list_size (pure n) (float_range 0. 10.))
    in
    let m = Array.of_list (List.map Array.of_list rows) in
    pure (Sunflow_matching.Stuffing.stuff m)
end

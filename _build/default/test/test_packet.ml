(* Rate allocation substrate and the Varys / Aalo / Fair schedulers. *)

module Rate_alloc = Sunflow_packet.Rate_alloc
module Residual = Sunflow_packet.Residual
module Maxmin = Sunflow_packet.Maxmin
module Snapshot = Sunflow_packet.Snapshot
module Varys = Sunflow_packet.Varys
module Aalo = Sunflow_packet.Aalo
module Fair = Sunflow_packet.Fair
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let b = 100.

let fid coflow src dst = { Rate_alloc.coflow; src; dst }

let test_rate_alloc_basic () =
  let a = Rate_alloc.empty () in
  Util.check_close "absent" 0. (Rate_alloc.rate a (fid 0 0 1));
  Rate_alloc.set a (fid 0 0 1) 5.;
  Rate_alloc.add a (fid 0 0 1) 5.;
  Util.check_close "accumulated" 10. (Rate_alloc.rate a (fid 0 0 1));
  Rate_alloc.set a (fid 0 0 1) 0.;
  Alcotest.(check int) "removed" 0 (List.length (Rate_alloc.to_list a))

let test_port_load_and_feasibility () =
  let a = Rate_alloc.empty () in
  Rate_alloc.set a (fid 0 0 1) 60.;
  Rate_alloc.set a (fid 1 0 2) 60.;
  Util.check_close "input load" 120. (Rate_alloc.port_load a (`In 0));
  Util.check_close "output load" 60. (Rate_alloc.port_load a (`Out 1));
  (match Rate_alloc.check_feasible ~bandwidth:b a with
  | Ok () -> Alcotest.fail "overload not detected"
  | Error msg -> Alcotest.(check bool) "names port" true (Util.contains msg "port 0"))

let test_residual () =
  let r = Residual.create ~bandwidth:b in
  Util.check_close "fresh" b (Residual.available_in r 3);
  Residual.consume r ~src:3 ~dst:4 30.;
  Util.check_close "in consumed" 70. (Residual.available_in r 3);
  Util.check_close "out consumed" 70. (Residual.available_out r 4);
  Util.check_close "headroom" 70. (Residual.circuit_headroom r ~src:3 ~dst:4);
  Alcotest.check_raises "over consume"
    (Invalid_argument "Residual.consume: port over capacity") (fun () ->
      Residual.consume r ~src:3 ~dst:9 80.)

let test_maxmin_sharing () =
  let r = Residual.create ~bandwidth:b in
  (* two flows share In 0; a third has its own ports *)
  let rates =
    Maxmin.allocate r [ fid 0 0 1; fid 0 0 2; fid 1 5 6 ]
  in
  let rate f = List.assoc f rates in
  Util.check_close "shared half" 50. (rate (fid 0 0 1));
  Util.check_close "shared half" 50. (rate (fid 0 0 2));
  Util.check_close "own ports full" 100. (rate (fid 1 5 6))

let test_maxmin_waterfill () =
  (* flows A:(0->1), B:(0->2), C:(3->2). Port 0 limits A and B to 50;
     then C grows to fill port 2's remaining 50. *)
  let r = Residual.create ~bandwidth:b in
  let rates = Maxmin.allocate r [ fid 0 0 1; fid 0 0 2; fid 0 3 2 ] in
  let rate f = List.assoc f rates in
  Util.check_close "A" 50. (rate (fid 0 0 1));
  Util.check_close "B" 50. (rate (fid 0 0 2));
  Util.check_close "C fills out 2" 50. (rate (fid 0 3 2))

let test_maxmin_duplicate_rejected () =
  let r = Residual.create ~bandwidth:b in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Maxmin.allocate: duplicate flow") (fun () ->
      ignore (Maxmin.allocate r [ fid 0 0 1; fid 0 0 1 ]))

let snapshot id ?(arrival = 0.) ?(sent = 0.) flows =
  {
    Snapshot.coflow = Coflow.make ~id ~arrival (Demand.of_list flows);
    sent;
  }

let bw = Units.gbps 1.

let test_varys_madd_proportional () =
  (* MADD: flows finish together - rates proportional to sizes *)
  let s = snapshot 0 [ ((0, 1), Units.mb 20.); ((0, 2), Units.mb 10.) ] in
  let rates = Varys.allocate ~bandwidth:bw [ s ] in
  let r1 = Rate_alloc.rate rates (fid 0 0 1) in
  let r2 = Rate_alloc.rate rates (fid 0 0 2) in
  Util.check_close ~eps:1e-6 "2:1 split" 2. (r1 /. r2);
  Util.check_close ~eps:1e-6 "bottleneck saturated" bw (r1 +. r2)

let test_varys_sebf_priority () =
  (* the smaller Coflow owns the shared port; the bigger one is pushed
     to leftovers *)
  let small = snapshot 1 [ ((0, 1), Units.mb 1.) ] in
  let big = snapshot 2 [ ((0, 2), Units.mb 100.) ] in
  let rates = Varys.allocate ~bandwidth:bw [ big; small ] in
  Util.check_close ~eps:1e-6 "small at line rate" bw
    (Rate_alloc.rate rates (fid 1 0 1));
  (* backfill gives port 0's nothing extra - it is saturated *)
  Util.check_close ~eps:1e-6 "big starved on shared port" 0.
    (Rate_alloc.rate rates (fid 2 0 2))

let test_varys_work_conservation () =
  (* when the priority Coflow cannot use a port, the next one gets it *)
  let first = snapshot 1 [ ((0, 1), Units.mb 1.) ] in
  let second = snapshot 2 [ ((3, 4), Units.mb 100.) ] in
  let rates = Varys.allocate ~bandwidth:bw [ first; second ] in
  Util.check_close ~eps:1e-6 "disjoint ports at line rate" bw
    (Rate_alloc.rate rates (fid 2 3 4))

let test_aalo_queue_of () =
  let p = Aalo.default_params in
  Alcotest.(check int) "fresh" 0 (Aalo.queue_of p ~sent:0.);
  Alcotest.(check int) "below 10MB" 0 (Aalo.queue_of p ~sent:(Units.mb 9.9));
  Alcotest.(check int) "at 10MB" 1 (Aalo.queue_of p ~sent:(Units.mb 10.));
  Alcotest.(check int) "at 100MB" 2 (Aalo.queue_of p ~sent:(Units.mb 100.));
  Alcotest.(check int) "capped at last queue" 9
    (Aalo.queue_of p ~sent:(Units.gb 1e6));
  Alcotest.check_raises "negative"
    (Invalid_argument "Aalo.queue_of: negative sent bytes") (fun () ->
      ignore (Aalo.queue_of p ~sent:(-1.)))

let test_aalo_equal_share_within_coflow () =
  (* sizes unknown: flows of one Coflow get equal (max-min) rates even
     when their sizes differ wildly *)
  let s =
    snapshot 0 [ ((0, 1), Units.mb 100.); ((0, 2), Units.mb 1.) ]
  in
  let rates = Aalo.allocate ~bandwidth:bw [ s ] in
  Util.check_close ~eps:1e-6 "equal rates"
    (Rate_alloc.rate rates (fid 0 0 1))
    (Rate_alloc.rate rates (fid 0 0 2))

let test_aalo_weighted_prevents_starvation () =
  (* under strict priority the old Coflow gets nothing; under weighted
     sharing it keeps a guaranteed sliver *)
  let old_c = snapshot 1 ~sent:(Units.mb 50.) [ ((0, 1), Units.mb 100.) ] in
  let fresh = snapshot 2 ~arrival:1. [ ((0, 2), Units.mb 1.) ] in
  let strict = Aalo.allocate ~bandwidth:bw [ old_c; fresh ] in
  Util.check_close ~eps:1e-6 "strict starves" 0.
    (Rate_alloc.rate strict (fid 1 0 1));
  let weighted =
    Aalo.allocate_with ~sharing:`Weighted Aalo.default_params ~bandwidth:bw
      [ old_c; fresh ]
  in
  Alcotest.(check bool) "weighted keeps a sliver" true
    (Rate_alloc.rate weighted (fid 1 0 1) > 0.);
  Alcotest.(check bool) "fresh still dominates" true
    (Rate_alloc.rate weighted (fid 2 0 2) > 10. *. Rate_alloc.rate weighted (fid 1 0 1));
  (match Rate_alloc.check_feasible ~bandwidth:bw weighted with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_aalo_weighted_work_conserving () =
  (* a lone Coflow still gets the whole port under weighted sharing *)
  let s = snapshot 0 [ ((0, 1), Units.mb 100.) ] in
  let weighted =
    Aalo.allocate_with ~sharing:`Weighted Aalo.default_params ~bandwidth:bw [ s ]
  in
  Util.check_close ~eps:1e-6 "full rate" bw (Rate_alloc.rate weighted (fid 0 0 1))

let test_aalo_queue_weights () =
  let p = Aalo.default_params in
  Util.check_close "top queue heaviest" (10. ** 9.) (Aalo.queue_weight p 0);
  Util.check_close "last queue weight 1" 1. (Aalo.queue_weight p 9);
  Alcotest.check_raises "range" (Invalid_argument "Aalo.queue_weight: bad queue")
    (fun () -> ignore (Aalo.queue_weight p 10))

let test_aalo_fresh_preempts_old () =
  (* a Coflow that has sent a lot sinks below a fresh arrival *)
  let old_c = snapshot 1 ~sent:(Units.mb 50.) [ ((0, 1), Units.mb 100.) ] in
  let fresh = snapshot 2 ~arrival:1. [ ((0, 2), Units.mb 1.) ] in
  let rates = Aalo.allocate ~bandwidth:bw [ old_c; fresh ] in
  Util.check_close ~eps:1e-6 "fresh owns the port" bw
    (Rate_alloc.rate rates (fid 2 0 2));
  Util.check_close ~eps:1e-6 "old starved" 0.
    (Rate_alloc.rate rates (fid 1 0 1))

let scheduler_feasibility name alloc =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:(name ^ ": allocations respect port capacities") ~count:150
       QCheck2.Gen.(list_size (int_range 1 5) (Util.Gen.coflow ~n_ports:5 ()))
       (fun coflows ->
         let snapshots =
           List.mapi
             (fun i c ->
               { Snapshot.coflow = { c with Coflow.id = i }; sent = 0. })
             coflows
         in
         let rates = alloc ~bandwidth:bw snapshots in
         match Rate_alloc.check_feasible ~bandwidth:bw rates with
         | Ok () -> true
         | Error _ -> false))

let suite =
  [
    Alcotest.test_case "rate alloc basics" `Quick test_rate_alloc_basic;
    Alcotest.test_case "port load and feasibility" `Quick
      test_port_load_and_feasibility;
    Alcotest.test_case "residual capacities" `Quick test_residual;
    Alcotest.test_case "maxmin equal sharing" `Quick test_maxmin_sharing;
    Alcotest.test_case "maxmin water-fill" `Quick test_maxmin_waterfill;
    Alcotest.test_case "maxmin duplicate rejected" `Quick
      test_maxmin_duplicate_rejected;
    Alcotest.test_case "varys MADD proportional" `Quick
      test_varys_madd_proportional;
    Alcotest.test_case "varys SEBF priority" `Quick test_varys_sebf_priority;
    Alcotest.test_case "varys work conservation" `Quick
      test_varys_work_conservation;
    Alcotest.test_case "aalo queue thresholds" `Quick test_aalo_queue_of;
    Alcotest.test_case "aalo equal share within coflow" `Quick
      test_aalo_equal_share_within_coflow;
    Alcotest.test_case "aalo fresh preempts old" `Quick
      test_aalo_fresh_preempts_old;
    Alcotest.test_case "aalo weighted prevents starvation" `Quick
      test_aalo_weighted_prevents_starvation;
    Alcotest.test_case "aalo weighted work conserving" `Quick
      test_aalo_weighted_work_conserving;
    Alcotest.test_case "aalo queue weights" `Quick test_aalo_queue_weights;
    scheduler_feasibility "aalo-weighted"
      (Aalo.allocate_with ~sharing:`Weighted Aalo.default_params);
    scheduler_feasibility "varys" Varys.allocate;
    scheduler_feasibility "aalo" Aalo.allocate;
    scheduler_feasibility "fair" Fair.allocate;
  ]

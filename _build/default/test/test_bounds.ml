module Bounds = Sunflow_core.Bounds
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let b = Units.gbps 1.
let delta = Units.ms 10.

let test_packet_lower_by_hand () =
  (* Equation 2: max over port sums of processing time.
     in.0 sends 30 MB (0.24 s), out.5 receives 15 MB (0.12 s),
     out.6 receives 20 MB (0.16 s): bottleneck is in.0. *)
  let d =
    Demand.of_list
      [
        ((0, 5), Units.mb 10.);
        ((0, 6), Units.mb 20.);
        ((1, 5), Units.mb 5.);
      ]
  in
  Util.check_close "TpL" 0.24 (Bounds.packet_lower ~bandwidth:b d)

let test_circuit_lower_by_hand () =
  (* Equations 3-4: each flow charged one delta on its ports.
     in.0: 0.24 + 2 deltas = 0.26; out.6: 0.16 + delta = 0.17. *)
  let d =
    Demand.of_list
      [
        ((0, 5), Units.mb 10.);
        ((0, 6), Units.mb 20.);
        ((1, 5), Units.mb 5.);
      ]
  in
  Util.check_close "TcL" 0.26 (Bounds.circuit_lower ~bandwidth:b ~delta d)

let test_empty_demand () =
  let d = Demand.create () in
  Util.check_close "TpL empty" 0. (Bounds.packet_lower ~bandwidth:b d);
  Util.check_close "TcL empty" 0. (Bounds.circuit_lower ~bandwidth:b ~delta d)

let test_flow_time () =
  Util.check_close "zero demand no delta" 0. (Bounds.flow_time ~delta 0.);
  Util.check_close "positive adds delta" 0.11 (Bounds.flow_time ~delta 0.1)

let test_alpha () =
  (* alpha = delta / min processing time; min flow 1 MB -> 8 ms *)
  let d = Demand.of_list [ ((0, 1), Units.mb 1.); ((2, 3), Units.mb 100.) ] in
  Util.check_close "alpha = 1.25" 1.25 (Bounds.alpha ~bandwidth:b ~delta d);
  Alcotest.check_raises "empty" (Invalid_argument "Bounds.alpha: empty demand")
    (fun () -> ignore (Bounds.alpha ~bandwidth:b ~delta (Demand.create ())))

let test_validation () =
  let d = Demand.of_list [ ((0, 1), 1.) ] in
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Bounds.packet_lower: bandwidth <= 0") (fun () ->
      ignore (Bounds.packet_lower ~bandwidth:0. d));
  Alcotest.check_raises "bad delta"
    (Invalid_argument "Bounds.circuit_lower: negative delta") (fun () ->
      ignore (Bounds.circuit_lower ~bandwidth:b ~delta:(-1.) d))

let prop_ordering =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"TpL <= TcL <= TpL + |C| deltas, and delta-monotone" ~count:300
       (Util.Gen.nonempty_demand ())
       (fun d ->
         let tpl = Bounds.packet_lower ~bandwidth:b d in
         let tcl = Bounds.circuit_lower ~bandwidth:b ~delta d in
         let tcl_big = Bounds.circuit_lower ~bandwidth:b ~delta:(2. *. delta) d in
         tpl <= tcl +. 1e-9
         && tcl <= tpl +. (float_of_int (Demand.n_flows d) *. delta) +. 1e-9
         && tcl <= tcl_big +. 1e-9))

let prop_bandwidth_scaling =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"doubling bandwidth halves TpL" ~count:200
       (Util.Gen.nonempty_demand ())
       (fun d ->
         let t1 = Bounds.packet_lower ~bandwidth:b d in
         let t2 = Bounds.packet_lower ~bandwidth:(2. *. b) d in
         Util.close ~eps:1e-9 t1 (2. *. t2)))

let suite =
  [
    Alcotest.test_case "packet lower bound by hand" `Quick
      test_packet_lower_by_hand;
    Alcotest.test_case "circuit lower bound by hand" `Quick
      test_circuit_lower_by_hand;
    Alcotest.test_case "empty demand" `Quick test_empty_demand;
    Alcotest.test_case "flow time" `Quick test_flow_time;
    Alcotest.test_case "alpha" `Quick test_alpha;
    Alcotest.test_case "validation" `Quick test_validation;
    prop_ordering;
    prop_bandwidth_scaling;
  ]

module Job = Sunflow_jobs.Job
module Job_sim = Sunflow_jobs.Job_sim
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Inter = Sunflow_core.Inter

let b = Units.gbps 1.
let delta = Units.ms 10.

let d flows = Demand.of_list flows
let stage ?(depends_on = []) demand = { Job.demand; depends_on }

let shuffle mb = d [ ((0, 5), Units.mb mb); ((1, 6), Units.mb mb) ]

let pipeline ~id ?(arrival = 0.) mbs =
  (* a chain: stage i depends on stage i-1 *)
  Job.make ~id ~arrival
    (List.mapi
       (fun i mb ->
         stage ~depends_on:(if i = 0 then [] else [ i - 1 ]) (shuffle mb))
       mbs)

(* --- Job structure --- *)

let test_job_validation () =
  Alcotest.check_raises "no stages"
    (Invalid_argument "Job.make: a job needs at least one stage") (fun () ->
      ignore (Job.make ~id:0 []));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Job.make: dependency index out of range") (fun () ->
      ignore (Job.make ~id:0 [ stage ~depends_on:[ 5 ] (shuffle 1.) ]));
  Alcotest.check_raises "cycle" (Invalid_argument "Job.make: dependency cycle")
    (fun () ->
      ignore
        (Job.make ~id:0
           [
             stage ~depends_on:[ 1 ] (shuffle 1.);
             stage ~depends_on:[ 0 ] (shuffle 1.);
           ]))

let test_job_structure () =
  let j =
    Job.make ~id:1
      [
        stage (shuffle 1.);
        stage (shuffle 2.);
        stage ~depends_on:[ 0; 1 ] (shuffle 3.);
        stage ~depends_on:[ 2 ] (shuffle 4.);
      ]
  in
  Alcotest.(check (list int)) "roots" [ 0; 1 ] (Job.roots j);
  Alcotest.(check (list int)) "dependants of 2" [ 3 ] (Job.dependants j 2);
  Alcotest.(check int) "depth of root" 0 (Job.depth j 0);
  Alcotest.(check int) "depth of join" 1 (Job.depth j 2);
  Alcotest.(check int) "depth of tail" 2 (Job.depth j 3);
  Alcotest.(check (list int)) "ready initially" [ 0; 1 ]
    (Job.ready j ~completed:(fun _ -> false));
  Alcotest.(check (list int)) "all ready when done" [ 0; 1; 2; 3 ]
    (Job.ready j ~completed:(fun _ -> true))

let test_critical_path () =
  let j = pipeline ~id:0 [ 10.; 20. ] in
  (* each stage bottleneck: 10 MB then 20 MB at 1 Gbps *)
  Util.check_close "chain sums" 0.24 (Job.critical_path ~bandwidth:b j);
  let par =
    Job.make ~id:1 [ stage (shuffle 10.); stage (shuffle 20.) ]
  in
  Util.check_close "parallel takes max" 0.16 (Job.critical_path ~bandwidth:b par)

(* --- Job_sim --- *)

let circuit = Job_sim.Circuit { delta; policy = Inter.Shortest_first }

let test_chain_completes_in_order () =
  let j = pipeline ~id:0 [ 10.; 10.; 10. ] in
  let r = Job_sim.run ~fabric:circuit ~bandwidth:b [ j ] in
  (match r.stage_finishes with
  | [ (0, 0, t0); (0, 1, t1); (0, 2, t2) ] ->
    Alcotest.(check bool) "ordered" true (t0 < t1 && t1 < t2);
    (* each stage: 2 parallel flows of 10 MB, delta + 80 ms *)
    Util.check_close "first stage" 0.09 t0;
    Util.check_close "whole chain" 0.27 t2
  | l -> Alcotest.failf "unexpected stage finishes (%d)" (List.length l));
  Util.check_close "jct" 0.27 (List.assoc 0 r.job_completions)

let test_chain_on_packet_fabric () =
  let j = pipeline ~id:0 [ 10.; 10. ] in
  let r =
    Job_sim.run
      ~fabric:(Job_sim.Packet Sunflow_packet.Varys.allocate)
      ~bandwidth:b [ j ]
  in
  (* no reconfiguration delay on the packet fabric *)
  Util.check_close "jct" 0.16 (List.assoc 0 r.job_completions)

let test_barrier_stage () =
  (* an empty middle stage is a pure barrier *)
  let j =
    Job.make ~id:2
      [
        stage (shuffle 10.);
        stage ~depends_on:[ 0 ] (Demand.create ());
        stage ~depends_on:[ 1 ] (shuffle 10.);
      ]
  in
  let r = Job_sim.run ~fabric:circuit ~bandwidth:b [ j ] in
  Util.check_close "barrier costs nothing" 0.18 (List.assoc 2 r.job_completions);
  Alcotest.(check int) "three stage finishes" 3 (List.length r.stage_finishes)

let test_diamond_dag () =
  let j =
    Job.make ~id:3
      [
        stage (shuffle 10.);
        stage ~depends_on:[ 0 ] (d [ ((0, 5), Units.mb 10.) ]);
        stage ~depends_on:[ 0 ] (d [ ((1, 6), Units.mb 10.) ]);
        stage ~depends_on:[ 1; 2 ] (shuffle 10.);
      ]
  in
  let r = Job_sim.run ~fabric:circuit ~bandwidth:b [ j ] in
  (* the two middle stages run in parallel on disjoint ports *)
  Util.check_close "diamond" 0.27 (List.assoc 3 r.job_completions)

let test_arrivals_respected () =
  let j = pipeline ~id:0 ~arrival:5. [ 10. ] in
  let r = Job_sim.run ~fabric:circuit ~bandwidth:b [ j ] in
  (match r.stage_finishes with
  | [ (0, 0, t) ] -> Util.check_close "absolute finish" 5.09 t
  | _ -> Alcotest.fail "one stage expected");
  Util.check_close "jct from arrival" 0.09 (List.assoc 0 r.job_completions)

let test_stage_policy_prioritises_early_stages () =
  (* two jobs contending on the same ports: job 0 is deep in its
     pipeline while job 1 is starting; the stage-aware policy serves
     job 1's root before job 0's late stage *)
  let late = pipeline ~id:0 [ 1.; 1.; 400. ] in
  let fresh = Job.make ~id:1 ~arrival:0.2 [ stage (shuffle 4.) ] in
  let run policy =
    Job_sim.run ~fabric:(Job_sim.Circuit { delta; policy }) ~bandwidth:b
      [ late; fresh ]
  in
  let stage_aware = run Job_sim.stage_policy in
  let fifo = run Inter.Fifo in
  Alcotest.(check bool) "fresh job faster under stage policy" true
    (List.assoc 1 stage_aware.job_completions
    < List.assoc 1 fifo.job_completions)

let test_duplicate_job_ids () =
  let a = pipeline ~id:7 [ 1. ] and b' = pipeline ~id:7 [ 1. ] in
  Alcotest.check_raises "dup" (Invalid_argument "Job_sim.run: duplicate job ids")
    (fun () -> ignore (Job_sim.run ~fabric:circuit ~bandwidth:b [ a; b' ]))

let prop_jobs_complete =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random job mixes complete on both fabrics"
       ~count:40
       QCheck2.Gen.(
         list_size (int_range 1 4)
           (pair (int_range 1 4) (float_range 0. 2.)))
       (fun specs ->
         let jobs =
           List.mapi
             (fun id (n_stages, arrival) ->
               Job.make ~id ~arrival
                 (List.init n_stages (fun i ->
                      stage
                        ~depends_on:(if i = 0 then [] else [ i - 1 ])
                        (d [ ((i mod 3, 4 + (i mod 2)), Units.mb 2.) ]))))
             specs
         in
         let on_circuit = Job_sim.run ~fabric:circuit ~bandwidth:b jobs in
         let on_packet =
           Job_sim.run
             ~fabric:(Job_sim.Packet Sunflow_packet.Varys.allocate)
             ~bandwidth:b jobs
         in
         List.length on_circuit.job_completions = List.length jobs
         && List.length on_packet.job_completions = List.length jobs
         && List.for_all2
              (fun (id, circuit_jct) (id', packet_jct) ->
                (* each job's completion is bounded below by its
                   critical path on both fabrics *)
                let j = List.find (fun (j : Job.t) -> j.id = id) jobs in
                let bound = Job.critical_path ~bandwidth:b j in
                id = id'
                && circuit_jct >= bound -. 1e-9
                && packet_jct >= bound -. 1e-9)
              on_circuit.job_completions on_packet.job_completions))

let suite =
  [
    Alcotest.test_case "job validation" `Quick test_job_validation;
    Alcotest.test_case "job structure" `Quick test_job_structure;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "chain completes in order" `Quick
      test_chain_completes_in_order;
    Alcotest.test_case "chain on packet fabric" `Quick
      test_chain_on_packet_fabric;
    Alcotest.test_case "barrier stage" `Quick test_barrier_stage;
    Alcotest.test_case "diamond dag" `Quick test_diamond_dag;
    Alcotest.test_case "arrivals respected" `Quick test_arrivals_respected;
    Alcotest.test_case "stage policy helps fresh jobs" `Quick
      test_stage_policy_prioritises_early_stages;
    Alcotest.test_case "duplicate job ids" `Quick test_duplicate_job_ids;
    prop_jobs_complete;
  ]

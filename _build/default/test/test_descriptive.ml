module D = Sunflow_stats.Descriptive

let check = Alcotest.(check (float 1e-9))

let test_mean () =
  check "mean" 2. (D.mean [ 1.; 2.; 3. ]);
  check "singleton" 5. (D.mean [ 5. ]);
  check "array" 2.5 (D.mean_array [| 1.; 2.; 3.; 4. |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (D.mean []))

let test_variance_stddev () =
  check "variance" 2. (D.variance [ 1.; 2.; 3.; 4.; 5. ]);
  check "stddev" (sqrt 2.) (D.stddev [ 1.; 2.; 3.; 4.; 5. ]);
  check "constant" 0. (D.variance [ 4.; 4.; 4. ])

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  check "p0" 1. (D.percentile 0. xs);
  check "p100" 4. (D.percentile 100. xs);
  check "p50 interp" 2.5 (D.percentile 50. xs);
  check "p25" 1.75 (D.percentile 25. xs);
  check "median odd" 2. (D.median [ 3.; 1.; 2. ]);
  check "unsorted input" 4. (D.percentile 100. [ 4.; 1.; 3. ])

let test_percentile_errors () =
  Alcotest.check_raises "p>100"
    (Invalid_argument "Descriptive.percentile: p outside [0, 100]") (fun () ->
      ignore (D.percentile 101. [ 1. ]))

let test_min_max () =
  let lo, hi = D.min_max [ 3.; -1.; 7.; 2. ] in
  check "min" (-1.) lo;
  check "max" 7. hi

let test_summary () =
  let s = D.summarize [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  Alcotest.(check int) "count" 10 s.count;
  check "mean" 5.5 s.mean;
  check "p50" 5.5 s.p50;
  check "min" 1. s.min;
  check "max" 10. s.max;
  let rendered = Format.asprintf "%a" D.pp_summary s in
  Alcotest.(check bool) "pp mentions count" true (Util.contains rendered "n=10")

let test_geometric_mean () =
  check "geo" 2. (D.geometric_mean [ 1.; 2.; 4. ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Descriptive.geometric_mean: non-positive sample")
    (fun () -> ignore (D.geometric_mean [ 1.; 0. ]))

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean empty" `Quick test_mean_empty;
    Alcotest.test_case "variance and stddev" `Quick test_variance_stddev;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile;
    Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
    Alcotest.test_case "min max" `Quick test_min_max;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
  ]

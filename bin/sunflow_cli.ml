(* The sunflow command-line tool.

   Subcommands:
     gen-trace    synthesise a Facebook-like Coflow trace file
     classify     Table-4 category statistics of a trace
     bounds       per-Coflow lower bounds of a trace
     intra        schedule each Coflow alone: Sunflow vs the baselines
     inter / sim  replay a trace through a chosen fabric/scheduler
     experiments  regenerate the paper's tables and figures
     check        validate plans + run the differential switch oracle
                  (the fuzz leg also proves attribution conservation)
     report       replay a trace with CCT attribution on and render a
                  machine-validatable JSON report (blame breakdown,
                  CCT CDFs by width, per-port utilization)

   intra, inter/sim and experiments also take --validate, which runs
   the Sunflow_check plan validator on every plan produced (and the
   conservation checker on every simulator result) and exits non-zero
   on any violation.

   intra, inter/sim, experiments and check take --trace-out FILE
   (Chrome trace-event JSON of the run's scheduler spans, for
   Perfetto / chrome://tracing) and --metrics-out FILE (the metrics
   registry as JSON); inter/sim additionally takes --timeline-out
   FILE (the per-Coflow simulated-time timeline as CSV, or JSON when
   FILE ends in .json); report takes --samples-out FILE (per-slice
   telemetry samples as JSON Lines). *)

open Cmdliner
module Units = Sunflow_core.Units
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Trace = Sunflow_trace.Trace
module Synthetic = Sunflow_trace.Synthetic
module Workload = Sunflow_trace.Workload
module D = Sunflow_stats.Descriptive
module Obs = Sunflow_obs
module Check = Sunflow_check
module Serve = Sunflow_serve.Serve

(* --- shared options --- *)

let bandwidth_arg =
  let doc = "Link rate in Gbps." in
  Arg.(value & opt float 1. & info [ "b"; "bandwidth" ] ~docv:"GBPS" ~doc)

let delta_arg =
  let doc = "Circuit reconfiguration delay in milliseconds." in
  Arg.(value & opt float 10. & info [ "d"; "delta" ] ~docv:"MS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the per-Coflow scheduling sweeps (default: \
     $(b,SUNFLOW_JOBS), else the machine's recommended domain count). 1 runs \
     sequentially."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs jobs = Sunflow_parallel.Pool.set_jobs jobs

let trace_file_arg =
  let doc = "Trace file in the coflow-benchmark format." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let load_trace path = Trace.load path
let to_bandwidth gbps = Units.gbps gbps
let to_delta ms = Units.ms ms

let validate_arg =
  let doc =
    "Run the $(b,Sunflow_check) plan validator on every plan produced and \
     the conservation checker on every simulator result; exit 1 on any \
     violation."
  in
  Arg.(value & flag & info [ "validate" ] ~doc)

(* Print a validation section; [true] when anything is broken. The
   caller decides when to [exit 1] — after the obs exports are
   written, so --validate composes with --trace-out. *)
let report_violations ~what vs =
  Format.printf "%s: %a@." what Check.Violation.pp_report vs;
  vs <> []

(* --- observability exports --- *)

let trace_out_arg =
  let doc =
    "Record scheduler spans and write them as Chrome trace-event JSON to \
     $(docv) (open in Perfetto or chrome://tracing)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc = "Write the metrics registry (counters, gauges, histograms) as JSON to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let timeline_out_arg =
  let doc =
    "Write the per-Coflow timeline (arrival, circuit setups with their \
     reconfiguration delay, flow finishes, CCT) to $(docv): JSON when $(docv) \
     ends in .json, CSV otherwise."
  in
  Arg.(
    value & opt (some string) None & info [ "timeline-out" ] ~docv:"FILE" ~doc)

(* Flush-on-interrupt: a SIGINT mid-run used to kill the process with
   every buffered export (--trace-out / --metrics-out / --timeline-out
   / --samples-out) silently dropped. Commands that buffer telemetry
   park their export writer here; the handler drains it, then dies
   with the conventional 128 + SIGINT. *)
let sigint_flush : (unit -> unit) ref = ref (fun () -> ())

let install_sigint_flush () =
  try
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           !sigint_flush ();
           exit 130))
  with Invalid_argument _ | Sys_error _ ->
    (* platform without SIGINT handling — nothing to install *)
    ()

(* Enable the obs layer around [f] when any export was requested, and
   write the requested files afterwards. Without flags, [f] runs with
   observability fully disabled (the default single-branch path). *)
let with_obs ?timeline_out ~trace_out ~metrics_out f =
  let timeline_out = Option.join timeline_out in
  let wanted =
    trace_out <> None || metrics_out <> None || timeline_out <> None
  in
  let write_exports () =
    Obs.Control.set_enabled false;
    Option.iter
      (fun path ->
        Obs.Io.write_file path (Obs.Tracer.to_chrome_json ());
        Format.printf "wrote %d trace events to %s (load in Perfetto)@."
          (Obs.Tracer.event_count ()) path;
        let d = Obs.Tracer.dropped () in
        if d > 0 then
          Format.eprintf
            "warning: %d span events were dropped (per-domain buffer cap) — \
             the trace written to %s is truncated@."
            d path)
      trace_out;
    Option.iter
      (fun path ->
        Obs.Io.write_file path (Obs.Registry.to_json (Obs.Registry.snapshot ()));
        Format.printf "wrote metrics to %s@." path)
      metrics_out;
    Option.iter
      (fun path ->
        let contents =
          if Filename.check_suffix path ".json" then Obs.Timeline.to_json ()
          else Obs.Timeline.to_csv ()
        in
        Obs.Io.write_file path contents;
        Format.printf "wrote per-Coflow timeline to %s@." path)
      timeline_out
  in
  if wanted then begin
    Obs.Control.set_enabled true;
    Obs.Tracer.clear ();
    Obs.Timeline.clear ();
    sigint_flush := write_exports;
    install_sigint_flush ()
  end;
  let result = f () in
  if wanted then begin
    sigint_flush := (fun () -> ());
    write_exports ()
  end;
  result

(* --- gen-trace --- *)

let gen_trace out seed n_coflows n_ports span perturb pods pod_size cross_frac
    =
  let trace =
    if pods > 0 then
      Synthetic.pods
        {
          Synthetic.default_pod_params with
          p_seed = seed;
          p_pods = pods;
          p_pod_size = pod_size;
          p_coflows = n_coflows;
          p_span = span;
          p_cross_frac = cross_frac;
          p_width_max =
            min Synthetic.default_pod_params.p_width_max
              (max 1 (pod_size / 2));
        }
    else
      Synthetic.generate
        { Synthetic.default_params with seed; n_coflows; n_ports; span }
  in
  let trace =
    if perturb then Workload.perturb ~seed:(seed + 1) trace else trace
  in
  Trace.save out trace;
  Format.printf "wrote %d Coflows (%a) to %s@." (Trace.n_coflows trace)
    Units.pp_bytes (Trace.total_bytes trace) out

let gen_trace_cmd =
  let out =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output trace file.")
  in
  let seed =
    Arg.(value & opt int Synthetic.default_params.seed & info [ "seed" ] ~doc:"RNG seed.")
  in
  let n =
    Arg.(
      value
      & opt int Synthetic.default_params.n_coflows
      & info [ "coflows" ] ~doc:"Number of Coflows.")
  in
  let ports =
    Arg.(
      value
      & opt int Synthetic.default_params.n_ports
      & info [ "ports" ] ~doc:"Fabric port count.")
  in
  let span =
    Arg.(
      value
      & opt float Synthetic.default_params.span
      & info [ "span" ] ~doc:"Arrival window in seconds.")
  in
  let perturb =
    Arg.(value & flag & info [ "perturb" ] ~doc:"Apply the +-5% size perturbation.")
  in
  let pods =
    Arg.(
      value & opt int 0
      & info [ "pods" ] ~docv:"P"
          ~doc:
            "Generate a pod-local storm instead of the Facebook-like mix: \
             $(docv) pods of $(b,--pod-size) consecutive ports, almost every \
             Coflow an intra-pod shuffle, a $(b,--cross-frac) fraction \
             cross-pod. $(b,0) (the default) keeps the Facebook-like \
             generator, for which $(b,--ports) sizes the fabric.")
  in
  let pod_size =
    Arg.(
      value
      & opt int Synthetic.default_pod_params.p_pod_size
      & info [ "pod-size" ] ~docv:"W"
          ~doc:"Ports per pod (with $(b,--pods)).")
  in
  let cross_frac =
    Arg.(
      value
      & opt float Synthetic.default_pod_params.p_cross_frac
      & info [ "cross-frac" ] ~docv:"F"
          ~doc:"Fraction of cross-pod Coflows (with $(b,--pods)).")
  in
  Cmd.v
    (Cmd.info "gen-trace" ~doc:"Synthesise a Facebook-like Coflow trace file.")
    Term.(
      const gen_trace $ out $ seed $ n $ ports $ span $ perturb $ pods
      $ pod_size $ cross_frac)

(* --- classify --- *)

let classify path =
  let trace = load_trace path in
  Format.printf "%-6s %8s %9s %12s %8s@." "cat" "coflows" "coflow%" "bytes"
    "bytes%";
  List.iter
    (fun (s : Workload.class_stat) ->
      Format.printf "%-6s %8d %8.1f%% %12s %7.3f%%@."
        (Coflow.Category.to_string s.category)
        s.count s.coflow_pct
        (Format.asprintf "%a" Units.pp_bytes s.bytes)
        s.bytes_pct)
    (Workload.classify trace)

let classify_cmd =
  Cmd.v
    (Cmd.info "classify" ~doc:"Category statistics of a trace (paper Table 4).")
    Term.(const classify $ trace_file_arg)

(* --- bounds --- *)

let bounds path gbps ms =
  let bandwidth = to_bandwidth gbps and delta = to_delta ms in
  let trace = load_trace path in
  Format.printf "%5s %5s %10s %10s %8s@." "id" "|C|" "TpL" "TcL" "alpha";
  List.iter
    (fun (c : Coflow.t) ->
      if not (Demand.is_empty c.demand) then
        Format.printf "%5d %5d %9.3fs %9.3fs %8.3f@." c.id
          (Coflow.n_subflows c)
          (Bounds.packet_lower ~bandwidth c.demand)
          (Bounds.circuit_lower ~bandwidth ~delta c.demand)
          (Bounds.alpha ~bandwidth ~delta c.demand))
    trace.Trace.coflows;
  Format.printf "idleness at %g Gbps: %.1f%%@." gbps
    (100. *. Workload.idleness ~bandwidth trace)

let bounds_cmd =
  Cmd.v
    (Cmd.info "bounds" ~doc:"Per-Coflow lower bounds (paper §2.4).")
    Term.(const bounds $ trace_file_arg $ bandwidth_arg $ delta_arg)

(* --- intra --- *)

let intra path gbps ms jobs validate trace_out metrics_out =
  set_jobs jobs;
  let failed =
    with_obs ~trace_out ~metrics_out @@ fun () ->
  let bandwidth = to_bandwidth gbps and delta = to_delta ms in
  let trace = load_trace path in
  let coflows =
    List.filter
      (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
      trace.Trace.coflows
  in
  let pmap f = Sunflow_parallel.Pool.run_list f coflows in
  let summary name ratios =
    Format.printf "%-9s CCT/TcL avg=%.2f p95=%.2f max=%.2f@." name
      (D.mean ratios) (D.percentile 95. ratios)
      (snd (D.min_max ratios))
  in
  let vspec = Check.Plan_check.spec ~delta ~bandwidth () in
  let sunflow_data =
    pmap (fun (c : Coflow.t) ->
        let tcl = Bounds.circuit_lower ~bandwidth ~delta c.demand in
        let c0 = { c with Coflow.arrival = 0. } in
        let r = Sunflow_core.Sunflow.schedule ~delta ~bandwidth c0 in
        let violations =
          if validate then Check.Plan_check.intra vspec c0 r else []
        in
        (r.finish /. tcl, violations))
  in
  summary "sunflow" (List.map fst sunflow_data);
  let vfail =
    validate
    && report_violations
         ~what:
           (Printf.sprintf "validate: %d intra plans"
              (List.length sunflow_data))
         (List.concat_map snd sunflow_data)
  in
  List.iter
    (fun (name, run) ->
      let ratios =
        pmap (fun (c : Coflow.t) ->
            let tcl = Bounds.circuit_lower ~bandwidth ~delta c.demand in
            let (o : Sunflow_baselines.Executor.outcome) =
              run ~delta ~bandwidth { c with Coflow.arrival = 0. }
            in
            o.cct /. tcl)
      in
      summary name ratios)
    [
      ("solstice", fun ~delta ~bandwidth c ->
        Sunflow_baselines.Solstice.schedule ~delta ~bandwidth c);
      ("tms", fun ~delta ~bandwidth c ->
        Sunflow_baselines.Tms.schedule ~delta ~bandwidth c);
      ("edmonds", fun ~delta ~bandwidth c ->
        Sunflow_baselines.Edmonds.schedule ~delta ~bandwidth c);
    ];
  vfail
  in
  if failed then exit 1

let intra_cmd =
  Cmd.v
    (Cmd.info "intra"
       ~doc:"Intra-Coflow comparison: every Coflow scheduled alone.")
    Term.(
      const intra $ trace_file_arg $ bandwidth_arg $ delta_arg $ jobs_arg
      $ validate_arg $ trace_out_arg $ metrics_out_arg)

(* --- inter --- *)

let inter path gbps ms scheduler replan buckets bucket_base shards shard_block
    plan_cache plan_cache_windows reps validate csv_out trace_out metrics_out
    timeline_out =
  if reps < 1 then begin
    Format.eprintf "--reps must be >= 1@.";
    exit 1
  end;
  if plan_cache_windows < 1 then begin
    Format.eprintf "--plan-cache-windows must be >= 1@.";
    exit 1
  end;
  let bandwidth = to_bandwidth gbps and delta = to_delta ms in
  let trace = load_trace path in
  if trace.Trace.coflows = [] then begin
    Format.eprintf
      "trace %s contains no Coflows — nothing to replay (average CCT would \
       be undefined)@."
      path;
    exit 1
  end;
  let failed =
    with_obs ~timeline_out ~trace_out ~metrics_out @@ fun () ->
  let plan_violations = ref [] and n_plans = ref 0 in
  let on_slice ~t ~t_next:_ ~established ~coflows (plan : _) =
    incr n_plans;
    let sp = Check.Plan_check.spec ~now:t ~established ~delta ~bandwidth () in
    plan_violations :=
      List.rev_append (Check.Plan_check.inter sp ~coflows plan)
        !plan_violations
  in
  let shard_stats =
    ref
      {
        Sunflow_core.Inter.shard_steps = 0;
        shard_conflicts = 0;
        shard_rollbacks = 0;
      }
  in
  let result =
    match scheduler with
    | `Sunflow ->
      let cache =
        if plan_cache then
          Some (Sunflow_core.Plan_cache.create ~max_windows:plan_cache_windows ())
        else None
      in
      let last = ref None in
      for i = 1 to reps do
        let t0 = Obs.Control.now_ns () in
        let r =
          Sunflow_sim.Circuit_sim.run
            ?on_slice:(if validate && i = reps then Some on_slice else None)
            ~replan ~buckets ~bucket_base ~shards ~shard_block ~shard_stats
            ?plan_cache:cache ~delta ~bandwidth trace.Trace.coflows
        in
        if reps > 1 then
          Format.printf "rep %d/%d: %.3f s wall@." i reps
            (Int64.to_float (Int64.sub (Obs.Control.now_ns ()) t0) /. 1e9);
        last := Some r
      done;
      (match cache with
      | None -> ()
      | Some c ->
        let s = Sunflow_core.Plan_cache.stats c in
        Format.printf
          "plan cache: %d hits, %d misses (%d stale), %d windows replayed, \
           %d entries (%d windows) resident@."
          s.Sunflow_core.Plan_cache.hits s.misses s.invalidations
          s.replayed_windows s.entries s.windows);
      Option.get !last
    | `Varys ->
      Sunflow_sim.Packet_sim.run ~scheduler:Sunflow_packet.Varys.allocate
        ~bandwidth trace.Trace.coflows
    | `Aalo ->
      Sunflow_sim.Packet_sim.run
        ~sent_thresholds:
          (Sunflow_sim.Packet_sim.aalo_thresholds
             Sunflow_packet.Aalo.default_params)
        ~scheduler:Sunflow_packet.Aalo.allocate ~bandwidth trace.Trace.coflows
    | `Fair ->
      Sunflow_sim.Packet_sim.run ~scheduler:Sunflow_packet.Fair.allocate
        ~bandwidth trace.Trace.coflows
  in
  Format.printf "%a@." Sunflow_sim.Sim_result.pp result;
  (if shards > 1 then
     let s = !shard_stats in
     Format.printf
       "shards: %d (stripe %d), %d steps, %d conflicts (rate %.3f), %d \
        rollbacks@."
       shards shard_block s.Sunflow_core.Inter.shard_steps s.shard_conflicts
       (if s.shard_steps = 0 then 0.
        else float_of_int s.shard_conflicts /. float_of_int s.shard_steps)
       s.shard_rollbacks);
  let vfail =
    validate
    &&
    (* the conservation checker applies to every scheduler; the plan
       validator only to the circuit fabric, whose slices we hooked *)
    let conservation =
      Check.Sim_check.result ~bandwidth ~coflows:trace.Trace.coflows result
    in
    report_violations
      ~what:
        (Printf.sprintf "validate: %d slice plans, conservation" !n_plans)
      (List.rev !plan_violations @ conservation)
  in
  (match csv_out with
  | None -> ()
  | Some path ->
    Obs.Io.write_file path (Sunflow_sim.Sim_result.to_csv result);
    Format.printf "per-Coflow CCTs written to %s@." path);
  vfail
  in
  if failed then exit 1

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-Coflow CCTs as CSV.")

let scheduler_arg =
  let values =
    [ ("sunflow", `Sunflow); ("varys", `Varys); ("aalo", `Aalo); ("fair", `Fair) ]
  in
  Arg.(
    value
    & opt (enum values) `Sunflow
    & info [ "s"; "scheduler" ] ~docv:"SCHED"
        ~doc:"Scheduler: $(b,sunflow) (circuit switch), $(b,varys), $(b,aalo) or $(b,fair) (packet switch).")

let replan_arg =
  let values =
    [ ("full", `Full); ("rebuild", `Rebuild); ("incremental", `Incremental) ]
  in
  Arg.(
    value
    & opt (enum values) `Full
    & info [ "replan" ] ~docv:"MODE"
        ~doc:
          "Replanning engine for the circuit fabric (ignored by the packet \
           schedulers): $(b,full) re-plans every active Coflow at each \
           event, $(b,incremental) reschedules only the priority-order \
           suffix an event invalidates (rollback-capable reservation \
           table), $(b,rebuild) makes the incremental decisions from a \
           fresh table each event — the differential oracle for \
           $(b,incremental).")

let buckets_arg =
  Arg.(
    value & opt int 0
    & info [ "replan-buckets" ] ~docv:"N"
        ~doc:
          "Coarsen the anchored replan modes' priority order into at most \
           $(docv) exponentially-spaced classes (0 = exact order). Arrivals \
           then invalidate only their own class boundary instead of every \
           Coflow with a marginally larger key; retained plans in later \
           classes are spliced back verbatim when their ports are free. \
           Requires $(b,--replan) $(b,rebuild) or $(b,incremental).")

let bucket_base_arg =
  Arg.(
    value & opt float 4.
    & info [ "replan-bucket-base" ] ~docv:"BASE"
        ~doc:
          "Growth factor between successive priority classes under \
           $(b,--replan-buckets) (must be > 1).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Partition the ports into $(docv) shards, each with its own \
           reservation table, and reschedule an event's dirty shards \
           independently (optimistically in parallel when the worker pool \
           has more than one domain). Cross-shard Coflows trigger a \
           deterministic rollback-and-merge pass, so the schedule is \
           bit-identical to $(b,--shards) $(b,1) for every shard count. \
           Requires $(b,--replan) $(b,rebuild) or $(b,incremental).")

let shard_block_arg =
  Arg.(
    value & opt int 1
    & info [ "shard-block" ] ~docv:"W"
        ~doc:
          "Stripe width of the shard map: port $(b,p) lands in shard \
           $(b,p / W mod S). Align with the trace's pod size so pod-local \
           Coflows stay shard-local.")

let plan_cache_arg =
  Arg.(
    value & flag
    & info [ "plan-cache" ]
        ~doc:
          "Thread a footprint-epoch plan cache through every intra-Coflow \
           scheduling call (circuit fabric only). Decisions are \
           bit-identical with or without it; the payoff is cross-replay — \
           combine with $(b,--reps) to replay the trace repeatedly on one \
           handle and watch later reps replay stored plans verbatim. \
           Prints the handle's hit/miss counters after the run.")

let plan_cache_windows_arg =
  Arg.(
    value & opt int 2_000_000
    & info [ "plan-cache-windows" ] ~docv:"N"
        ~doc:
          "Capacity of the $(b,--plan-cache) handle in stored plan windows \
           (FIFO eviction). Size it above one replay's stored-window count \
           — the \"resident\" figure the summary prints — or later reps \
           evict what they are about to replay and hit nothing.")

let reps_arg =
  Arg.(
    value & opt int 1
    & info [ "reps" ] ~docv:"N"
        ~doc:
          "Replay the trace $(docv) times (circuit fabric only), printing \
           per-rep wall time. With $(b,--plan-cache) the handle is shared \
           across reps, so reps 2..N hit the cache.")

let inter_term =
  Term.(
    const inter $ trace_file_arg $ bandwidth_arg $ delta_arg $ scheduler_arg
    $ replan_arg $ buckets_arg $ bucket_base_arg $ shards_arg $ shard_block_arg
    $ plan_cache_arg $ plan_cache_windows_arg $ reps_arg $ validate_arg
    $ csv_arg $ trace_out_arg $ metrics_out_arg $ timeline_out_arg)

let inter_cmd =
  Cmd.v
    (Cmd.info "inter" ~doc:"Replay a trace with arrivals through a fabric.")
    inter_term

(* [sim] is [inter] under the name the observability tooling
   documents; both spellings stay valid. *)
let sim_cmd =
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Replay a trace with arrivals through a fabric (alias of inter).")
    inter_term

(* --- gantt --- *)

let gantt path coflow_id gbps ms =
  let bandwidth = to_bandwidth gbps and delta = to_delta ms in
  let trace = load_trace path in
  match
    List.find_opt
      (fun (c : Coflow.t) -> c.id = coflow_id)
      trace.Trace.coflows
  with
  | None ->
    Format.eprintf "no Coflow %d in %s@." coflow_id path;
    exit 2
  | Some c ->
    let c = { c with Coflow.arrival = 0. } in
    let r = Sunflow_core.Sunflow.schedule ~delta ~bandwidth c in
    Format.printf "%a@.@.%a@.@." Coflow.pp c
      (Sunflow_core.Schedule.pp_gantt ~width:72 ~bandwidth)
      r.reservations;
    Format.printf "CCT %a | TcL %a | TpL %a | %d setups@."
      Units.pp_time r.finish Units.pp_time
      (Bounds.circuit_lower ~bandwidth ~delta c.demand)
      Units.pp_time
      (Bounds.packet_lower ~bandwidth c.demand)
      r.setups

let gantt_cmd =
  let id =
    Arg.(
      required
      & pos 1 (some int) None
      & info [] ~docv:"ID" ~doc:"Coflow id within the trace.")
  in
  Cmd.v
    (Cmd.info "gantt"
       ~doc:"Render one Coflow's Sunflow schedule as a Gantt chart.")
    Term.(const gantt $ trace_file_arg $ id $ bandwidth_arg $ delta_arg)

(* --- experiments --- *)

let experiments names jobs validate trace_out metrics_out =
  set_jobs jobs;
  let failed =
    with_obs ~trace_out ~metrics_out @@ fun () ->
  let module E = Sunflow_experiments in
  let vfail =
    validate
    &&
    (* Prove the schedules behind the tables before printing them:
       every intra plan of the raw trace through the validator, and
       the inter replay of the paper-replica trace through both the
       simulator and the physical switch. *)
    let s = E.Common.default in
    let delta = s.E.Common.delta and bandwidth = s.E.Common.bandwidth in
    let raw = E.Common.raw_trace s in
    let vspec = Check.Plan_check.spec ~delta ~bandwidth () in
    let intra_vs =
      Sunflow_parallel.Pool.run_list
        (fun (c : Coflow.t) ->
          let c0 = { c with Coflow.arrival = 0. } in
          Check.Plan_check.intra vspec c0
            (Sunflow_core.Sunflow.schedule ~delta ~bandwidth c0))
        (List.filter
           (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
           raw.Trace.coflows)
    in
    let intra_fail =
      report_violations
        ~what:
          (Printf.sprintf "validate: %d intra plans" (List.length intra_vs))
        (List.concat intra_vs)
    in
    let original = E.Common.original_trace s in
    let o =
      Check.Diff_oracle.replay ~delta ~bandwidth
        ~n_ports:original.Trace.n_ports original.Trace.coflows
    in
    let oracle_fail =
      report_violations
        ~what:
          (Printf.sprintf
             "validate: inter replay vs physical switch (%d Coflows \
              compared, worst gap %.3g s)"
             o.Check.Diff_oracle.compared o.Check.Diff_oracle.max_err_s)
        o.Check.Diff_oracle.violations
    in
    intra_fail || oracle_fail
  in
  let all =
    [
      ("table4", E.Exp_table4.report);
      ("fig3", E.Exp_fig3.report);
      ("fig4", E.Exp_fig4.report);
      ("fig5", E.Exp_fig5.report);
      ("fig6", E.Exp_fig6.report);
      ("fig7", E.Exp_fig7.report);
      ("fig8", E.Exp_fig8.report);
      ("fig9", E.Exp_fig9.report);
      ("fig10", E.Exp_fig10.report);
      ("table3", E.Exp_complexity.report);
      ("headline", E.Exp_headline.report);
      ("ordering", E.Exp_ordering.report);
      ("baseline-gap", E.Exp_baseline_gap.report);
      ("ablations", E.Exp_ablations.report);
      ("oracle", E.Exp_oracle.report);
      ("extensions", E.Exp_extensions.report);
    ]
  in
  let selected =
    match names with
    | [] -> all
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all with
          | Some r -> (n, r)
          | None ->
            Format.eprintf "unknown experiment %S; known: %s@." n
              (String.concat ", " (List.map fst all));
            exit 2)
        names
  in
  List.iter
    (fun (_, report) -> report ?settings:None Format.std_formatter)
    selected;
  vfail
  in
  if failed then exit 1

let experiments_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:"Experiments to run (default: all). E.g. fig3 fig8 headline.")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures on the synthetic trace.")
    Term.(
      const experiments $ names $ jobs_arg $ validate_arg $ trace_out_arg
      $ metrics_out_arg)

(* --- check --- *)

let check path fuzz seed gbps ms jobs trace_out metrics_out =
  set_jobs jobs;
  let bandwidth = to_bandwidth gbps and delta = to_delta ms in
  let any_failed =
    with_obs ~trace_out ~metrics_out @@ fun () ->
  let failed = ref false in
  let verdict what vs = if report_violations ~what vs then failed := true in
  (match path with
  | Some path ->
    let trace = load_trace path in
    let coflows =
      List.filter
        (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
        trace.Trace.coflows
    in
    let vspec = Check.Plan_check.spec ~delta ~bandwidth () in
    let intra_vs =
      Sunflow_parallel.Pool.run_list
        (fun (c : Coflow.t) ->
          let c0 = { c with Coflow.arrival = 0. } in
          Check.Plan_check.intra vspec c0
            (Sunflow_core.Sunflow.schedule ~delta ~bandwidth c0))
        coflows
    in
    verdict
      (Printf.sprintf "%d intra plans" (List.length intra_vs))
      (List.concat intra_vs);
    let o =
      Check.Diff_oracle.replay ~delta ~bandwidth ~n_ports:trace.Trace.n_ports
        trace.Trace.coflows
    in
    verdict
      (Printf.sprintf
         "inter replay vs physical switch (%d Coflows compared, worst gap \
          %.3g s)"
         o.Check.Diff_oracle.compared o.Check.Diff_oracle.max_err_s)
      o.Check.Diff_oracle.violations
  | None -> ());
  let fuzz = match (path, fuzz) with None, 0 -> 200 | _ -> fuzz in
  if fuzz > 0 then begin
    (* check_attrib: every fuzzed replay also proves the CCT
       attribution conservation invariant (Sim_check.attribution) *)
    let s =
      Check.Diff_oracle.fuzz ~check_attrib:true ~seed ~traces:fuzz ~n_ports:8
        ~max_coflows:6 ~span:1.5 ~max_mb:40. ~delta ~bandwidth ()
    in
    verdict
      (Printf.sprintf
         "%d randomized traces (%d finishes compared, worst gap %.3g s)"
         s.Check.Diff_oracle.traces s.Check.Diff_oracle.total_compared
         s.Check.Diff_oracle.worst_err_s)
      s.Check.Diff_oracle.total_violations
  end;
  !failed
  in
  if any_failed then begin
    Format.printf "FAIL@.";
    exit 1
  end
  else Format.printf "PASS@."

let check_cmd =
  let trace =
    let doc =
      "Trace file to validate (intra plans + differential inter replay). \
       Without a trace, the fuzzer runs alone."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let fuzz =
    let doc =
      "Also replay $(docv) randomized traces with arrivals through both the \
       analytical simulator and the physical switch model (default 200 when \
       no trace file is given)."
    in
    Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N" ~doc)
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Fuzzer RNG seed.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate Sunflow plans and cross-check the simulator against the \
          physical switch model.")
    Term.(
      const check $ trace $ fuzz $ seed $ bandwidth_arg $ delta_arg $ jobs_arg
      $ trace_out_arg $ metrics_out_arg)

(* --- report --- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let report path gbps ms replan buckets bucket_base shards shard_block
    plan_cache plan_cache_windows jobs out samples_out top_k =
  set_jobs jobs;
  if plan_cache_windows < 1 then begin
    Format.eprintf "--plan-cache-windows must be >= 1@.";
    exit 1
  end;
  let bandwidth = to_bandwidth gbps and delta = to_delta ms in
  let trace = load_trace path in
  if trace.Trace.coflows = [] then begin
    Format.eprintf "trace %s contains no Coflows — nothing to report on@." path;
    exit 1
  end;
  (* Attribution needs the recording state on regardless of export
     flags; run over a cleared state so the report sees this replay
     alone. *)
  let was = Obs.Control.enabled () in
  Obs.Control.set_enabled true;
  Obs.Tracer.clear ();
  Obs.Timeline.clear ();
  Obs.Attrib.clear ();
  Obs.Sampler.clear ();
  let shard_stats =
    ref
      {
        Sunflow_core.Inter.shard_steps = 0;
        shard_conflicts = 0;
        shard_rollbacks = 0;
      }
  in
  (* an interrupt mid-replay still drains the per-slice sample ledger *)
  Option.iter
    (fun path ->
      sigint_flush := (fun () -> Obs.Io.write_file path (Obs.Sampler.to_jsonl ()));
      install_sigint_flush ())
    samples_out;
  let cache =
    if plan_cache then
      Some (Sunflow_core.Plan_cache.create ~max_windows:plan_cache_windows ())
    else None
  in
  let result =
    Sunflow_sim.Circuit_sim.run ~replan ~buckets ~bucket_base ~shards
      ~shard_block ~shard_stats ?plan_cache:cache ~delta ~bandwidth
      trace.Trace.coflows
  in
  sigint_flush := (fun () -> ());
  Obs.Control.set_enabled was;
  let s = !shard_stats in
  let n_samples = List.length (Obs.Sampler.samples ()) in
  let run =
    [
      ("trace", json_string path);
      ("policy", json_string "scf");
      ( "replan",
        json_string
          (match replan with
          | `Full -> "full"
          | `Rebuild -> "rebuild"
          | `Incremental -> "incremental") );
      ("buckets", string_of_int buckets);
      ("bucket_base", Printf.sprintf "%.9g" bucket_base);
      ("shards", string_of_int shards);
      ("shard_block", string_of_int shard_block);
      ("bandwidth_gbps", Printf.sprintf "%.9g" gbps);
      ("delta_ms", Printf.sprintf "%.9g" ms);
      ("shard_steps", string_of_int s.Sunflow_core.Inter.shard_steps);
      ("shard_conflicts", string_of_int s.Sunflow_core.Inter.shard_conflicts);
      ("shard_rollbacks", string_of_int s.Sunflow_core.Inter.shard_rollbacks);
      ("samples", string_of_int n_samples);
    ]
    (* the cache counters ride in the run section, not the body: body
       digests are gated byte-equal across engine variants, and the
       cache is a variant, not a result *)
    @ (match cache with
      | None -> [ ("plan_cache", json_string "off") ]
      | Some c ->
        let cs = Sunflow_core.Plan_cache.stats c in
        [
          ("plan_cache", json_string "on");
          ("cache_hits", string_of_int cs.Sunflow_core.Plan_cache.hits);
          ("cache_misses", string_of_int cs.misses);
          ("cache_invalidations", string_of_int cs.invalidations);
          ("cache_replayed_windows", string_of_int cs.replayed_windows);
        ])
  in
  let rep, violations =
    Check.Attrib_report.build ~top_k ~run ~coflows:trace.Trace.coflows result
  in
  let json = Obs.Report.to_json rep in
  (match out with
  | None ->
    print_string json;
    print_newline ()
  | Some path ->
    Obs.Io.write_file path json;
    Format.printf "wrote report to %s@." path);
  (match samples_out with
  | None -> ()
  | Some path ->
    Obs.Io.write_file path (Obs.Sampler.to_jsonl ());
    Format.printf "wrote %d per-slice samples to %s@." n_samples path);
  (* stderr, so stdout stays a single parseable JSON document *)
  if violations <> [] then begin
    Format.eprintf "attribution conservation: %a@." Check.Violation.pp_report
      violations;
    exit 1
  end

let report_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the report JSON to $(docv) instead of stdout.")
  in
  let samples_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "samples-out" ] ~docv:"FILE"
          ~doc:
            "Write the per-slice telemetry samples (active Coflows, circuit \
             transmit/reconfigure seconds, busy ports, dirty-suffix size, \
             shard conflicts) as JSON Lines to $(docv).")
  in
  let top_k =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"Slowest-Coflow rows to include in the report.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Replay a trace with CCT attribution enabled and render a \
          machine-validatable JSON report: CCT CDFs binned by Coflow width, \
          aggregate blame breakdown (admission wait, reconfiguration, \
          transfer, blocked-on-contention), per-port utilization, and the \
          slowest Coflows with their blame vectors.")
    Term.(
      const report $ trace_file_arg $ bandwidth_arg $ delta_arg $ replan_arg
      $ buckets_arg $ bucket_base_arg $ shards_arg $ shard_block_arg
      $ plan_cache_arg $ plan_cache_windows_arg $ jobs_arg $ out $ samples_out
      $ top_k)

(* --- serve --- *)

let serve path gbps ms buckets bucket_base shards shard_block plan_cache
    plan_cache_windows jobs deadline_mult validate trace_out metrics_out =
  set_jobs jobs;
  if plan_cache_windows < 1 then begin
    Format.eprintf "--plan-cache-windows must be >= 1@.";
    exit 1
  end;
  let bandwidth = to_bandwidth gbps and delta = to_delta ms in
  let stats, broken =
    with_obs ~trace_out ~metrics_out @@ fun () ->
    let ic = if path = "-" then stdin else open_in path in
    Fun.protect ~finally:(fun () -> if path <> "-" then close_in_noerr ic)
    @@ fun () ->
    let next = Trace.reader ic in
    let deadline_of =
      if deadline_mult <= 0. then None
      else
        Some
          (fun (c : Coflow.t) ->
            c.arrival
            +. deadline_mult
               *. Bounds.circuit_lower ~bandwidth ~delta c.demand)
    in
    (* graceful interrupt: the loop polls the flag, finishes its
       current event and falls through to the summary and the export
       writes below — overriding the kill-with-a-flush handler
       [with_obs] installs for the batch commands *)
    let interrupted = ref false in
    (try
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle (fun _ -> interrupted := true))
     with Invalid_argument _ | Sys_error _ -> ());
    let runner =
      if shards > 1 then Sunflow_sim.Circuit_sim.shard_runner ()
      else Sunflow_core.Inter.sequential_runner
    in
    (* --validate buffers every admitted Coflow and its finish —
       O(stream) memory, for bounded test runs only *)
    let kept = ref [] and ccts = ref [] and finishes = ref [] in
    let on_admit, on_finish =
      if validate then
        ( (fun (c : Coflow.t) ~finish:_ -> kept := c :: !kept),
          fun ~id ~t ~cct ->
            ccts := (id, cct) :: !ccts;
            finishes := (id, t) :: !finishes )
      else ((fun _ ~finish:_ -> ()), fun ~id:_ ~t:_ ~cct:_ -> ())
    in
    let w0 = Obs.Control.now_ns () in
    let cache =
      if plan_cache then
        Some (Sunflow_core.Plan_cache.create ~max_windows:plan_cache_windows ())
      else None
    in
    let stats =
      Serve.run ~buckets ~bucket_base ~shards ~shard_block ~runner
        ?plan_cache:cache ?deadline_of
        ~stop:(fun () -> !interrupted)
        ~on_admit ~on_finish ~delta ~bandwidth next
    in
    let wall_s =
      Int64.to_float (Int64.sub (Obs.Control.now_ns ()) w0) /. 1e9
    in
    Format.printf "%a@." Serve.pp_stats stats;
    if wall_s > 0. then
      Format.printf "throughput:  %.0f events/s (%.3f s wall)@."
        (float_of_int stats.Serve.events /. wall_s)
        wall_s;
    if Obs.Control.enabled () then begin
      let h = Obs.Registry.histogram_value (Obs.Registry.histogram "serve.event_s") in
      if h.Obs.Registry.h_count > 0 then
        Format.printf "p99 event:   %.6f s@." (Obs.Registry.quantile h 0.99)
    end;
    let broken =
      validate
      && (not stats.Serve.stopped)
      &&
      let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l in
      let result =
        {
          Sunflow_sim.Sim_result.ccts = sort !ccts;
          finishes = sort !finishes;
          makespan = stats.Serve.makespan;
          n_events = stats.Serve.events;
          total_setups = stats.Serve.setups;
        }
      in
      report_violations ~what:"serve conservation (admitted subset)"
        (Check.Sim_check.result ~bandwidth ~coflows:!kept result)
    in
    (stats, broken)
  in
  if broken then exit 1;
  if stats.Serve.stopped then exit 130

let serve_cmd =
  let stream_arg =
    let doc =
      "Arrival stream in the coflow-benchmark format ($(b,-) reads stdin). \
       Arrival times must be non-decreasing."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STREAM" ~doc)
  in
  let deadline_arg =
    Arg.(
      value & opt float 0.
      & info [ "deadline" ] ~docv:"MULT"
          ~doc:
            "Deadline admission control: each Coflow's absolute deadline is \
             its arrival plus $(docv) times its standalone circuit lower \
             bound (so $(docv) close to 1 is tight, larger is looser). A \
             Coflow is admitted only if its tentative plan on the current \
             reservation table meets the deadline; otherwise the plan is \
             rolled back and the Coflow rejected. 0 disables admission — \
             every Coflow is served shortest-first.")
  in
  let validate_serve_arg =
    let doc =
      "Buffer every admitted Coflow's result and run the conservation \
       checker on the admitted subset at EOF (unbounded memory — for \
       bounded test streams); exit 1 on any violation."
    in
    Arg.(value & flag & info [ "validate" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running serving mode: consume an unbounded arrival stream \
          through the incremental engine at bounded resident memory, with \
          optional deadline admission control. Reports a summary (and any \
          requested obs exports) on EOF or SIGINT; exits 130 when \
          interrupted.")
    Term.(
      const serve $ stream_arg $ bandwidth_arg $ delta_arg $ buckets_arg
      $ bucket_base_arg $ shards_arg $ shard_block_arg $ plan_cache_arg
      $ plan_cache_windows_arg $ jobs_arg $ deadline_arg $ validate_serve_arg
      $ trace_out_arg $ metrics_out_arg)

let () =
  let info =
    Cmd.info "sunflow" ~version:"1.0.0"
      ~doc:"Sunflow: efficient optical circuit scheduling for Coflows (CoNEXT 2016)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_trace_cmd;
            classify_cmd;
            bounds_cmd;
            intra_cmd;
            inter_cmd;
            sim_cmd;
            gantt_cmd;
            experiments_cmd;
            check_cmd;
            report_cmd;
            serve_cmd;
          ]))
